// Topology ensemble subsystem tests: per-family structural invariants,
// fixed-seed determinism, the strong-connectivity repair pass, the
// acyclic-result contract of the refolded ER generator, topology dressing
// (instance + runnable netlist), and sequential-vs-pooled bitwise equality
// of the full ensemble pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>

#include "core/netlist_text.hpp"
#include "gen/ensemble.hpp"
#include "gen/instances.hpp"
#include "gen/topologies.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/cycles.hpp"
#include "graph/throughput.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace wp::gen {
namespace {

bool same_graph(const graph::Digraph& a, const graph::Digraph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges())
    return false;
  for (graph::NodeId n = 0; n < a.num_nodes(); ++n)
    if (a.node_name(n) != b.node_name(n)) return false;
  for (graph::EdgeId e = 0; e < a.num_edges(); ++e) {
    const auto& ea = a.edge(e);
    const auto& eb = b.edge(e);
    if (ea.src != eb.src || ea.dst != eb.dst || ea.label != eb.label ||
        ea.relay_stations != eb.relay_stations || ea.tokens != eb.tokens)
      return false;
  }
  return true;
}

TopologyConfig config_for(TopologyFamily family, int num_nodes) {
  TopologyConfig config;
  config.family = family;
  config.num_nodes = num_nodes;
  return config;
}

TEST(Topologies, DeterministicUnderFixedSeed) {
  for (const TopologyFamily family :
       {TopologyFamily::kBarabasiAlbert, TopologyFamily::kWattsStrogatz,
        TopologyFamily::kMesh, TopologyFamily::kClusteredErdosRenyi}) {
    const TopologyConfig config = config_for(family, 18);
    Rng rng_a(42), rng_b(42), rng_c(43);
    const graph::Digraph a = generate_topology(config, rng_a);
    const graph::Digraph b = generate_topology(config, rng_b);
    const graph::Digraph c = generate_topology(config, rng_c);
    EXPECT_TRUE(same_graph(a, b)) << family_name(family);
    // A different seed must vary the result (mesh wiring is fixed, but its
    // relay-station annotations are seeded).
    EXPECT_FALSE(same_graph(a, c)) << family_name(family);
  }
}

TEST(Topologies, AllFamiliesStronglyConnectedAndLabeled) {
  for (const TopologyFamily family :
       {TopologyFamily::kBarabasiAlbert, TopologyFamily::kWattsStrogatz,
        TopologyFamily::kMesh, TopologyFamily::kClusteredErdosRenyi}) {
    Rng rng(7);
    const graph::Digraph g = generate_topology(config_for(family, 20), rng);
    EXPECT_TRUE(is_strongly_connected(g)) << family_name(family);
    // Unique edge labels: they key nets, demand maps and CSV rows.
    std::vector<std::string> labels;
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e)
      labels.push_back(g.edge(e).label);
    std::sort(labels.begin(), labels.end());
    EXPECT_EQ(std::unique(labels.begin(), labels.end()), labels.end())
        << family_name(family);
    // Relay-station annotations within the configured bound.
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_GE(g.edge(e).relay_stations, 0);
      EXPECT_LE(g.edge(e).relay_stations, 3);
    }
  }
}

TEST(BarabasiAlbert, HeavyDegreeTail) {
  TopologyConfig config = config_for(TopologyFamily::kBarabasiAlbert, 64);
  config.ba_attach = 2;
  Rng rng(11);
  const graph::Digraph g = generate_topology(config, rng);
  const std::vector<int> degrees = undirected_degrees(g);
  const double mean =
      std::accumulate(degrees.begin(), degrees.end(), 0.0) /
      static_cast<double>(degrees.size());
  const int max_degree = *std::max_element(degrees.begin(), degrees.end());
  // Preferential attachment grows hubs far above the mean degree — the
  // scale-free signature a homogeneous family never shows.
  EXPECT_GE(static_cast<double>(max_degree), 2.5 * mean);
}

TEST(WattsStrogatz, LowRewireKeepsLatticeClustering) {
  TopologyConfig ws = config_for(TopologyFamily::kWattsStrogatz, 48);
  ws.ws_neighbors = 6;
  ws.ws_rewire_probability = 0.05;
  Rng rng_ws(3);
  const graph::Digraph g_ws = generate_topology(ws, rng_ws);

  // ER reference at matched undirected density.
  TopologyConfig er = config_for(TopologyFamily::kClusteredErdosRenyi, 48);
  er.er_clusters = 1;
  er.er_intra_probability =
      static_cast<double>(g_ws.num_edges()) / (48.0 * 47.0);
  Rng rng_er(3);
  const graph::Digraph g_er = generate_topology(er, rng_er);

  const double c_ws = average_clustering(g_ws);
  const double c_er = average_clustering(g_er);
  // Ring-lattice clustering survives a 5% rewire; ER has essentially none.
  EXPECT_GT(c_ws, 0.3);
  EXPECT_GT(c_ws, 2.0 * c_er);
}

TEST(Mesh, TorusIsRegularMeshHasBoundary) {
  TopologyConfig torus = config_for(TopologyFamily::kMesh, 25);
  torus.mesh_rows = 5;
  torus.mesh_cols = 5;
  torus.mesh_torus = true;
  Rng rng(1);
  const graph::Digraph g_torus = generate_topology(torus, rng);
  EXPECT_EQ(g_torus.num_nodes(), 25);
  EXPECT_EQ(g_torus.num_edges(), 100);  // 50 undirected links, all paired
  for (graph::NodeId n = 0; n < g_torus.num_nodes(); ++n) {
    EXPECT_EQ(g_torus.out_edges(n).size(), 4u);
    EXPECT_EQ(g_torus.in_edges(n).size(), 4u);
  }

  TopologyConfig mesh = config_for(TopologyFamily::kMesh, 12);
  mesh.mesh_rows = 3;
  mesh.mesh_cols = 4;
  Rng rng2(1);
  const graph::Digraph g_mesh = generate_topology(mesh, rng2);
  // 2*(3*3 + 2*4) = 34 directed edges; corners keep undirected degree 2.
  EXPECT_EQ(g_mesh.num_edges(), 34);
  const std::vector<int> degrees = undirected_degrees(g_mesh);
  EXPECT_EQ(*std::min_element(degrees.begin(), degrees.end()), 2);
  EXPECT_EQ(*std::max_element(degrees.begin(), degrees.end()), 4);
  EXPECT_TRUE(is_strongly_connected(g_mesh));
}

TEST(Mesh, DerivesNearSquareFactorization) {
  Rng rng(5);
  const graph::Digraph g =
      generate_topology(config_for(TopologyFamily::kMesh, 20), rng);  // 4x5
  EXPECT_EQ(g.num_nodes(), 20);
  EXPECT_EQ(g.num_edges(), 2 * (4 * 4 + 3 * 5));
}

TEST(ClusteredEr, IntraClusterDenserThanInter) {
  TopologyConfig config =
      config_for(TopologyFamily::kClusteredErdosRenyi, 40);
  config.er_clusters = 4;
  config.er_intra_probability = 0.4;
  config.er_inter_probability = 0.02;
  config.ensure_strongly_connected = false;
  Rng rng(17);
  const graph::Digraph g = generate_topology(config, rng);
  auto cluster_of = [](int i) { return i / 10; };  // contiguous blocks of 10
  double intra = 0, inter = 0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& data = g.edge(e);
    (cluster_of(data.src) == cluster_of(data.dst) ? intra : inter) += 1;
  }
  const double intra_pairs = 4.0 * 10 * 9;
  const double inter_pairs = 40.0 * 39 - intra_pairs;
  EXPECT_GT(intra / intra_pairs, 5.0 * (inter / inter_pairs));
}

TEST(StrongConnectivity, RepairClosesTheCondensation) {
  TopologyConfig config =
      config_for(TopologyFamily::kClusteredErdosRenyi, 24);
  config.er_clusters = 4;
  config.er_intra_probability = 0.15;
  config.er_inter_probability = 0.0;  // islands: repair must bridge them
  config.ensure_strongly_connected = false;
  Rng rng(9);
  graph::Digraph g = generate_topology(config, rng);
  ASSERT_FALSE(is_strongly_connected(g));
  const int before = g.num_edges();
  make_strongly_connected(g, rng, 2);
  EXPECT_TRUE(is_strongly_connected(g));
  EXPECT_GT(g.num_edges(), before);
  for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_GE(g.out_edges(n).size(), 1u);
    EXPECT_GE(g.in_edges(n).size(), 1u);
  }
}

TEST(SccHelpers, ComponentsOfTwoRingsAndABridge) {
  graph::Digraph g;
  for (int i = 0; i < 6; ++i) g.add_node("n" + std::to_string(i));
  for (int i = 0; i < 3; ++i) g.add_edge(i, (i + 1) % 3);
  for (int i = 3; i < 6; ++i) g.add_edge(i, 3 + (i + 1 - 3) % 3);
  g.add_edge(0, 3);  // one-way bridge
  const SccResult scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 2);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[3], scc.component[5]);
  EXPECT_NE(scc.component[0], scc.component[3]);
  EXPECT_FALSE(is_strongly_connected(g));
}

// Satellite regression: the refolded ER generator's explicit contract —
// ensure_cycle=false may yield an acyclic digraph, and every downstream
// min-cycle-ratio path must report Th 1.0 instead of throwing.
TEST(RandomDigraph, AcyclicResultContract) {
  Rng rng(5);
  RandomGraphConfig config;
  config.num_nodes = 6;
  config.edge_probability = 0.0;
  config.ensure_cycle = false;
  const graph::Digraph g = random_digraph(config, rng);
  EXPECT_TRUE(enumerate_cycles(g).empty());
  for (const auto& result :
       {graph::min_cycle_ratio_exhaustive(g), graph::min_cycle_ratio_lawler(g),
        graph::min_cycle_ratio_howard(g)}) {
    EXPECT_FALSE(result.has_cycle);
    EXPECT_DOUBLE_EQ(result.ratio, 1.0);
    EXPECT_TRUE(result.critical_cycle.empty());
  }
  EXPECT_DOUBLE_EQ(graph::system_throughput(g), 1.0);
  const auto report = graph::analyze_throughput(g);
  EXPECT_TRUE(report.loops.empty());
  EXPECT_DOUBLE_EQ(report.system_throughput, 1.0);
}

TEST(RandomDigraph, EnsureCycleStillGuaranteesOne) {
  Rng rng(7);
  RandomGraphConfig config;
  config.num_nodes = 6;
  config.edge_probability = 0.0;
  config.ensure_cycle = true;
  EXPECT_FALSE(enumerate_cycles(random_digraph(config, rng)).empty());
}

// ---------------------------------------------------------------- dressing

TEST(Dressing, InstanceMirrorsTopologyAndRespectsDistributions) {
  Rng rng(21);
  TopologyConfig topo_config =
      config_for(TopologyFamily::kClusteredErdosRenyi, 12);
  topo_config.er_clusters = 3;
  const graph::Digraph topology = generate_topology(topo_config, rng);

  SystemConfig config;
  config.name = "dress12";
  config.blocks.min_area_mm2 = 1.0;
  config.blocks.max_area_mm2 = 4.0;
  config.blocks.min_aspect = 0.8;
  config.blocks.max_aspect = 1.25;
  const GeneratedSystem sys = dress_topology(topology, config, rng);

  ASSERT_EQ(sys.instance.blocks.size(),
            static_cast<std::size_t>(topology.num_nodes()));
  ASSERT_EQ(sys.instance.nets.size(),
            static_cast<std::size_t>(topology.num_edges()));
  for (graph::NodeId n = 0; n < topology.num_nodes(); ++n) {
    const auto& block = sys.instance.blocks[static_cast<std::size_t>(n)];
    EXPECT_EQ(block.name, topology.node_name(n));
    const double area = block.width * block.height;
    const double aspect = block.width / block.height;
    EXPECT_GE(area, 1.0 - 1e-9);
    EXPECT_LE(area, 4.0 + 1e-9);
    EXPECT_GE(aspect, 0.8 - 1e-9);
    EXPECT_LE(aspect, 1.25 + 1e-9);
  }
  for (graph::EdgeId e = 0; e < topology.num_edges(); ++e) {
    const auto& net = sys.instance.nets[static_cast<std::size_t>(e)];
    EXPECT_EQ(net.connection, topology.edge(e).label);
    EXPECT_EQ(net.src_block, topology.edge(e).src);
    EXPECT_EQ(net.dst_block, topology.edge(e).dst);
  }
}

TEST(Dressing, NetlistParsesIntoARunnableSystem) {
  Rng rng(33);
  const graph::Digraph topology = generate_topology(
      config_for(TopologyFamily::kBarabasiAlbert, 14), rng);
  SystemConfig config;
  config.name = "ba14";
  const GeneratedSystem sys = dress_topology(topology, config, rng);

  const ParsedSystem parsed = parse_system(sys.netlist, default_registry());
  EXPECT_EQ(parsed.name, "ba14");
  EXPECT_EQ(parsed.spec.process_names().size(),
            static_cast<std::size_t>(topology.num_nodes()));
  ASSERT_EQ(parsed.spec.channels().size(),
            static_cast<std::size_t>(topology.num_edges()));
  for (graph::EdgeId e = 0; e < topology.num_edges(); ++e) {
    const auto& channel =
        parsed.spec.channels()[static_cast<std::size_t>(e)];
    EXPECT_EQ(channel.connection, topology.edge(e).label);
    EXPECT_EQ(channel.from, topology.node_name(topology.edge(e).src));
    EXPECT_EQ(channel.to, topology.node_name(topology.edge(e).dst));
    EXPECT_EQ(channel.relay_stations, topology.edge(e).relay_stations);
  }
}

TEST(Dressing, SupportsFullWidthHubs) {
  // A hub with in-degree 32 — the InputMask-width limit dress_topology
  // enforces — must dress into a netlist that actually instantiates
  // (regression: the Moore mask sampler overflowed at exactly 32 inputs).
  graph::Digraph star;
  star.add_node("hub");
  for (int i = 0; i < 32; ++i) {
    const graph::NodeId leaf = star.add_node("leaf" + std::to_string(i));
    star.add_edge(leaf, 0, "in" + std::to_string(i));
    star.add_edge(0, leaf, "out" + std::to_string(i));
  }
  Rng rng(2);
  const GeneratedSystem sys = dress_topology(star, SystemConfig{}, rng);
  const ParsedSystem parsed = parse_system(sys.netlist, default_registry());
  EXPECT_NO_THROW(parsed.spec.instantiate("hub"));
}

TEST(Dressing, RejectsUndressableTopologies) {
  graph::Digraph dangling;
  dangling.add_node("a");
  dangling.add_node("b");
  dangling.add_edge(0, 1, "e0");
  Rng rng(1);
  EXPECT_THROW(dress_topology(dangling, SystemConfig{}, rng),
               ContractViolation);
}

// ---------------------------------------------------------------- ensemble

EnsembleConfig small_ensemble() {
  EnsembleConfig config;
  config.seed = 77;
  config.samples_per_family = 3;
  config.anneal.iterations = 300;

  FamilySpec ba;
  ba.name = "ba-10";
  ba.topology = config_for(TopologyFamily::kBarabasiAlbert, 10);
  config.families.push_back(ba);

  FamilySpec mesh;
  mesh.name = "mesh-3x3";
  mesh.topology = config_for(TopologyFamily::kMesh, 9);
  config.families.push_back(mesh);
  return config;
}

TEST(Ensemble, SequentialAndPooledAreBitIdentical) {
  const EnsembleConfig config = small_ensemble();
  const EnsembleReport sequential = run_ensemble_sequential(config);
  ThreadPool pool(2);
  const EnsembleReport pooled = run_ensemble(config, &pool);
  ASSERT_EQ(sequential.samples.size(), 6u);
  EXPECT_TRUE(sequential.samples == pooled.samples);
  ASSERT_EQ(pooled.families.size(), 2u);
  for (std::size_t f = 0; f < 2; ++f) {
    EXPECT_EQ(sequential.families[f].th_mean, pooled.families[f].th_mean);
    EXPECT_EQ(sequential.families[f].th_p95, pooled.families[f].th_p95);
    EXPECT_EQ(sequential.families[f].rs_mean, pooled.families[f].rs_mean);
  }
}

TEST(Ensemble, DeterministicAcrossRunsAndSane) {
  const EnsembleConfig config = small_ensemble();
  const EnsembleReport a = run_ensemble_sequential(config);
  const EnsembleReport b = run_ensemble_sequential(config);
  EXPECT_TRUE(a.samples == b.samples);
  for (const auto& s : a.samples) {
    EXPECT_GT(s.throughput, 0.0);
    EXPECT_LE(s.throughput, 1.0);
    EXPECT_GT(s.nodes, 0);
    EXPECT_GT(s.edges, 0);
    EXPECT_GE(s.cycles, 1);  // strongly connected => at least one loop
    EXPECT_GE(s.total_rs, 0);
    EXPECT_GT(s.area, 0.0);
  }
  // Family stats reflect their sample slice.
  const auto& family = a.families[0];
  EXPECT_EQ(family.samples, 3u);
  EXPECT_GE(family.th_max, family.th_median);
  EXPECT_GE(family.th_median, family.th_min);
  EXPECT_GE(family.th_p95, family.th_median);
}

TEST(Ensemble, CycleCapRecordsOverflowAsUncounted) {
  EnsembleConfig config = small_ensemble();
  config.families.resize(1);  // ba-10 has well over one elementary cycle
  config.samples_per_family = 1;
  config.max_cycle_enumeration = 1;
  const EnsembleReport report = run_ensemble_sequential(config);
  EXPECT_EQ(report.samples[0].cycles, -1);
  EXPECT_EQ(report.families[0].cycles_counted, 0u);
  EXPECT_DOUBLE_EQ(report.families[0].cycles_mean, 0.0);
}

TEST(Ensemble, SimulateModeIsDeterministicAndEquivalent) {
  EnsembleConfig config = small_ensemble();
  config.families.resize(1);  // ba-10 only, for wall-clock
  config.anneal.iterations = 150;
  config.simulate.enabled = true;
  config.simulate.golden_cycles = 96;
  config.simulate.wp_cycles = 384;

  const EnsembleReport sequential = run_ensemble_sequential(config);
  ThreadPool pool(2);
  const EnsembleReport pooled = run_ensemble(config, &pool);
  EXPECT_TRUE(sequential.samples == pooled.samples);

  for (const auto& s : sequential.samples) {
    EXPECT_TRUE(s.simulated);
    EXPECT_TRUE(s.sim_ok);  // WP runs τ-equivalent to the cached golden
    EXPECT_GT(s.th_wp1_sim, 0.0);
    EXPECT_LE(s.th_wp1_sim, 1.0);
    // The paper's ordering: the WP2 oracle never loses to WP1.
    EXPECT_GE(s.th_wp2_sim + 1e-9, s.th_wp1_sim);
  }
  // One golden run per distinct netlist, shared by WP1 and WP2.
  EXPECT_EQ(sequential.sim_golden_runs, sequential.samples.size());
  ASSERT_EQ(sequential.families.size(), 1u);
  EXPECT_GT(sequential.families[0].th_wp2_sim_mean, 0.0);
  EXPECT_EQ(sequential.families[0].sim_failures, 0u);
}

TEST(Ensemble, SimulateOffLeavesSimColumnsInert) {
  EnsembleConfig config = small_ensemble();
  config.families.resize(1);
  config.samples_per_family = 1;
  const EnsembleReport report = run_ensemble_sequential(config);
  EXPECT_FALSE(report.samples[0].simulated);
  EXPECT_EQ(report.samples[0].th_wp2_sim, 0.0);
  EXPECT_EQ(report.sim_golden_runs, 0u);
  EXPECT_DOUBLE_EQ(report.families[0].th_wp2_sim_mean, 0.0);
}

TEST(Ensemble, FamilySeedsAreIndependentOfListPosition) {
  // Seeds are keyed on the family name, so filtering or reordering the
  // family list (bench_ensembles --families) reproduces the full run's
  // rows bit for bit.
  const EnsembleConfig both = small_ensemble();
  EnsembleConfig only_second = both;
  only_second.families = {both.families[1]};
  const EnsembleReport full = run_ensemble_sequential(both);
  const EnsembleReport filtered = run_ensemble_sequential(only_second);
  const auto per_family =
      static_cast<std::size_t>(both.samples_per_family);
  ASSERT_EQ(filtered.samples.size(), per_family);
  for (std::size_t i = 0; i < per_family; ++i)
    EXPECT_TRUE(filtered.samples[i] == full.samples[per_family + i]) << i;
}

TEST(Ensemble, PerFamilyAnnealIterationsOverride) {
  // Override equal to the global budget: bit-identical samples.
  EnsembleConfig base = small_ensemble();
  base.families.resize(1);
  base.samples_per_family = 2;
  EnsembleConfig overridden = base;
  overridden.anneal.iterations = 9999;  // would change results...
  overridden.families[0].anneal_iterations =
      base.anneal.iterations;  // ...but the override wins
  const EnsembleReport a = run_ensemble_sequential(base);
  const EnsembleReport b = run_ensemble_sequential(overridden);
  EXPECT_TRUE(a.samples == b.samples);

  // A genuinely smaller budget changes the annealed placement.
  EnsembleConfig smaller = base;
  smaller.families[0].anneal_iterations = 50;
  const EnsembleReport c = run_ensemble_sequential(smaller);
  EXPECT_FALSE(a.samples == c.samples);
}

TEST(Ensemble, ScaleFamiliesSequentialPooledAndParallelEngineAgree) {
  // The 256–1024-node scale substrate: sequential ≡ pooled must hold at
  // the new sizes, and the kParallel engine must land on the identical
  // samples (its fan-out degrades to inline evaluation on pool workers —
  // same trajectory either way, by the bit-identity law). Budgets are
  // test-sized: the full-horizon runs live in bench_ensembles.
  EnsembleConfig config;
  config.seed = 91;
  config.samples_per_family = 1;
  config.max_cycle_enumeration = 0;  // Johnson on 1024 nodes is a bench
  for (FamilySpec family : scale_family_specs()) {
    if (family.name == "ba-512" || family.name == "mesh-16x32") continue;
    family.anneal_iterations = 60;
    config.families.push_back(std::move(family));
  }
  ASSERT_EQ(config.families.size(), 4u);  // 256 + 1024, ba + mesh

  const EnsembleReport sequential = run_ensemble_sequential(config);
  ThreadPool pool(3);
  const EnsembleReport pooled = run_ensemble(config, &pool);
  EXPECT_TRUE(sequential.samples == pooled.samples);
  for (const auto& s : sequential.samples) {
    EXPECT_GT(s.throughput, 0.0);
    EXPECT_GT(s.area, 0.0);
    EXPECT_EQ(s.cycles, -1);
  }
  EXPECT_EQ(sequential.samples[0].nodes, 256);
  EXPECT_EQ(sequential.samples[1].nodes, 1024);

  config.anneal.pack_engine = fplan::PackEngine::kParallel;
  const EnsembleReport parallel_engine = run_ensemble(config, &pool);
  EXPECT_TRUE(sequential.samples == parallel_engine.samples);
}

TEST(Ensemble, ScaleFamilyHorizonsAreDiameterScaled) {
  const std::vector<FamilySpec> families = scale_family_specs();
  ASSERT_EQ(families.size(), 6u);
  std::uint64_t ba_prev = 0;
  std::uint64_t mesh_prev = 0;
  for (const auto& family : families) {
    EXPECT_GT(family.golden_cycles, 0u) << family.name;
    EXPECT_EQ(family.wp_cycles, 6 * family.golden_cycles) << family.name;
    EXPECT_GT(family.anneal_iterations, 0) << family.name;
    if (family.topology.family == TopologyFamily::kBarabasiAlbert) {
      EXPECT_GE(family.golden_cycles, ba_prev) << family.name;
      ba_prev = family.golden_cycles;
    } else {
      EXPECT_GT(family.golden_cycles, mesh_prev) << family.name;
      mesh_prev = family.golden_cycles;
    }
  }
  // Diameter, not node count, drives the horizon: the 1024-node mesh
  // (diameter 64) needs a far longer run than the 1024-node BA graph
  // (diameter ~log n).
  EXPECT_GT(mesh_prev, 3 * ba_prev);
}

TEST(Ensemble, FamilyHorizonOverridesLandInJobs) {
  EnsembleConfig config = small_ensemble();
  config.simulate.enabled = true;
  config.simulate.golden_cycles = 256;
  config.simulate.wp_cycles = 1536;
  config.families[0].golden_cycles = 512;   // ba-10 overrides both
  config.families[0].wp_cycles = 3072;
  // mesh-3x3 keeps the ensemble-wide horizons (overrides stay 0).
  const std::vector<SampleJob> jobs = ensemble_jobs(config);
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(jobs[0].simulate.golden_cycles, 512u);
  EXPECT_EQ(jobs[0].simulate.wp_cycles, 3072u);
  EXPECT_EQ(jobs[3].simulate.golden_cycles, 256u);
  EXPECT_EQ(jobs[3].simulate.wp_cycles, 1536u);
}

TEST(Ensemble, CsvRowCounts) {
  const EnsembleConfig config = small_ensemble();
  const EnsembleReport report = run_ensemble_sequential(config);
  std::ostringstream samples, families;
  write_samples_csv(report, samples);
  write_families_csv(report, families);
  const auto count_lines = [](const std::string& text) {
    return std::count(text.begin(), text.end(), '\n');
  };
  EXPECT_EQ(count_lines(samples.str()),
            static_cast<long>(report.samples.size()) + 1);
  EXPECT_EQ(count_lines(families.str()),
            static_cast<long>(report.families.size()) + 1);
  EXPECT_EQ(samples.str().rfind("family,sample,seed", 0), 0u);
}

}  // namespace
}  // namespace wp::gen
