// Graph-analysis tests: digraph bookkeeping, Johnson cycle enumeration,
// the three minimum-cycle-ratio solvers (cross-checked on random graphs),
// Karp's minimum cycle mean, the throughput report and the RS optimizer.
#include <gtest/gtest.h>

#include "util/assert.hpp"

#include <cmath>

#include "graph/cycle_ratio.hpp"
#include "graph/cycles.hpp"
#include "graph/digraph.hpp"
#include "gen/topologies.hpp"
#include "graph/dot.hpp"
#include "graph/optimize.hpp"
#include "graph/throughput.hpp"
#include "graph/throughput_engine.hpp"

namespace wp::graph {
namespace {

TEST(Digraph, BasicAccessors) {
  Digraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const EdgeId e = g.add_edge(a, b, "ab", 2);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.node_name(a), "a");
  EXPECT_EQ(g.find_node("b"), b);
  EXPECT_EQ(g.find_node("zzz"), -1);
  EXPECT_EQ(g.edge(e).relay_stations, 2);
  EXPECT_EQ(g.edge_latency(e), 3);
  EXPECT_EQ(g.out_edges(a).size(), 1u);
  EXPECT_EQ(g.in_edges(b).size(), 1u);
  g.set_relay_stations(a, b, 5);
  EXPECT_EQ(g.edge(e).relay_stations, 5);
  EXPECT_THROW(g.set_relay_stations(b, a, 1), wp::ContractViolation);
  EXPECT_THROW(g.add_edge(a, 7), wp::ContractViolation);
}

TEST(Cycles, SelfLoopAndDigon) {
  Digraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(a, a, "self");
  g.add_edge(a, b, "ab");
  g.add_edge(b, a, "ba", 1);
  const auto cycles = enumerate_cycles(g);
  ASSERT_EQ(cycles.size(), 2u);
  // One 1-cycle, one 2-cycle.
  int count1 = 0, count2 = 0;
  for (const auto& c : cycles) {
    if (c.processes == 1) ++count1;
    if (c.processes == 2) {
      ++count2;
      EXPECT_EQ(c.relay_stations, 1);
      EXPECT_NEAR(c.throughput(), 2.0 / 3.0, 1e-12);
    }
  }
  EXPECT_EQ(count1, 1);
  EXPECT_EQ(count2, 1);
}

TEST(Cycles, CompleteGraphCountK4) {
  // K4 has 6 digons + 8 triangles + 6 four-cycles = 20 elementary cycles.
  Digraph g;
  for (int i = 0; i < 4; ++i) g.add_node("n" + std::to_string(i));
  for (int u = 0; u < 4; ++u)
    for (int v = 0; v < 4; ++v)
      if (u != v) g.add_edge(u, v);
  EXPECT_EQ(enumerate_cycles(g).size(), 20u);
}

TEST(Cycles, AcyclicGraphHasNone) {
  Digraph g;
  for (int i = 0; i < 5; ++i) g.add_node("n" + std::to_string(i));
  for (int i = 0; i < 4; ++i) g.add_edge(i, i + 1);
  g.add_edge(0, 2);
  g.add_edge(1, 4);
  EXPECT_TRUE(enumerate_cycles(g).empty());
}

TEST(Cycles, ToStringNamesNodes) {
  Digraph g;
  g.add_node("CU");
  g.add_node("IC");
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const auto cycles = enumerate_cycles(g);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycle_to_string(g, cycles[0]), "CU -> IC -> CU");
}

TEST(CycleRatio, RingFormula) {
  for (int m : {1, 2, 3, 6}) {
    for (int n : {0, 1, 2, 5}) {
      Digraph g = gen::ring_graph(m, {0});
      g.edge(0).relay_stations = n;
      const double expected =
          static_cast<double>(m) / static_cast<double>(m + n);
      EXPECT_NEAR(min_cycle_ratio_exhaustive(g).ratio, expected, 1e-12);
      EXPECT_NEAR(min_cycle_ratio_lawler(g).ratio, expected, 1e-9);
      EXPECT_NEAR(min_cycle_ratio_howard(g).ratio, expected, 1e-9);
    }
  }
}

TEST(CycleRatio, AcyclicReportsUnitThroughput) {
  Digraph g;
  g.add_node("a");
  g.add_node("b");
  g.add_edge(0, 1, "", 7);
  for (const auto& result :
       {min_cycle_ratio_exhaustive(g), min_cycle_ratio_lawler(g),
        min_cycle_ratio_howard(g)}) {
    EXPECT_FALSE(result.has_cycle);
    EXPECT_DOUBLE_EQ(result.ratio, 1.0);
    EXPECT_TRUE(result.critical_cycle.empty());
  }
}

TEST(CycleRatio, PicksTheWorstLoop) {
  // Two loops sharing a node: 2/(2+0)=1.0 and 3/(3+3)=0.5.
  Digraph g;
  for (int i = 0; i < 4; ++i) g.add_node("n" + std::to_string(i));
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2, "", 1);
  g.add_edge(2, 3, "", 1);
  g.add_edge(3, 1, "", 1);
  const auto result = min_cycle_ratio_lawler(g);
  EXPECT_NEAR(result.ratio, 0.5, 1e-9);
  EXPECT_EQ(result.critical_cycle.size(), 3u);
}

TEST(CycleRatio, LargeMagnitudeGraphsDoNotSpinOnFloatNoise) {
  // Regression for the Bellman–Ford relaxation slack. A 4-ring with
  // million-scale tokens and latencies: the edge weights tokens − λ·lat
  // at λ = ratio are huge terms whose true partial sums cancel to zero, so
  // the float residue of walking the ring is ~1e-10 — and with the old
  // absolute 1e-15 slack the probe kept "relaxing" on that residue, burned
  // all n passes, and extracted a spurious negative cycle at the exact
  // ratio (empirically reproduced before the fix). The relative slack,
  // scaled to |tokens| + λ·latency, treats the residue as converged.
  Digraph g;
  long long total_tokens = 0;
  long long total_latency = 0;
  for (int i = 0; i < 4; ++i) g.add_node("n" + std::to_string(i));
  for (int i = 0; i < 4; ++i) {
    const int tokens = i % 3 == 0 ? 2000000 : (i % 3 == 1 ? 0 : 1000000);
    const int rs = (i % 4) * 1000003 + 999999;
    const EdgeId e = g.add_edge(i, (i + 1) % 4, "e" + std::to_string(i), rs);
    g.edge(e).tokens = tokens;
    total_tokens += tokens;
    total_latency += g.edge_latency(e);
  }
  const double expected =
      static_cast<double>(total_tokens) / static_cast<double>(total_latency);

  const auto lawler = min_cycle_ratio_lawler(g);
  const auto howard = min_cycle_ratio_howard(g);
  EXPECT_DOUBLE_EQ(lawler.ratio, expected);
  EXPECT_DOUBLE_EQ(howard.ratio, expected);
  EXPECT_EQ(howard.ratio, min_cycle_ratio_exhaustive(g).ratio);

  // The probe at λ = ratio must converge to "no negative cycle" instead of
  // spinning on the residue; meaningfully above the ratio it must still
  // find one (the slack is noise-proof, not blind).
  EXPECT_TRUE(detail::find_negative_cycle(g, expected).empty());
  EXPECT_FALSE(
      detail::find_negative_cycle(g, expected * (1.0 + 1e-3)).empty());

  // The incremental engine sees through the same tolerance: a perturbation
  // chain on the huge-latency graph stays bit-identical to fresh solves.
  ThroughputEngine engine(g);
  for (const int rs : {999999, 1000037, 999999, 123456}) {
    Digraph fresh = g;
    fresh.edge(0).relay_stations = rs;
    EXPECT_EQ(engine.throughput({{"e0", rs}}),
              min_cycle_ratio_howard(fresh).ratio)
        << "rs=" << rs;
  }
}

class McrCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McrCrossCheck, SolversAgreeOnRandomGraphs) {
  wp::Rng rng(GetParam());
  gen::RandomGraphConfig config;
  config.num_nodes = static_cast<int>(rng.range(3, 10));
  config.edge_probability = 0.25;
  config.max_relay_stations = 4;
  const Digraph g = gen::random_digraph(config, rng);
  const auto exhaustive = min_cycle_ratio_exhaustive(g, 500000);
  const auto lawler = min_cycle_ratio_lawler(g);
  const auto howard = min_cycle_ratio_howard(g);
  ASSERT_TRUE(exhaustive.has_cycle);
  EXPECT_NEAR(lawler.ratio, exhaustive.ratio, 1e-9) << "seed " << GetParam();
  EXPECT_NEAR(howard.ratio, exhaustive.ratio, 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Random, McrCrossCheck,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(Karp, MinimumCycleMean) {
  // Triangle with weights 1,2,3 (mean 2) and a digon with weights 1,2
  // (mean 1.5): Karp must report 1.5.
  Digraph g;
  for (int i = 0; i < 3; ++i) g.add_node("n" + std::to_string(i));
  const EdgeId e01 = g.add_edge(0, 1);
  const EdgeId e12 = g.add_edge(1, 2);
  const EdgeId e20 = g.add_edge(2, 0);
  const EdgeId e10 = g.add_edge(1, 0);
  std::vector<double> w(static_cast<std::size_t>(g.num_edges()));
  w[static_cast<std::size_t>(e01)] = 1;
  w[static_cast<std::size_t>(e12)] = 2;
  w[static_cast<std::size_t>(e20)] = 3;
  w[static_cast<std::size_t>(e10)] = 2;
  const auto mean = min_cycle_mean_karp(g, w);
  ASSERT_TRUE(mean.has_value());
  EXPECT_NEAR(*mean, 1.5, 1e-9);
}

TEST(Karp, AcyclicReturnsNullopt) {
  Digraph g;
  g.add_node("a");
  g.add_node("b");
  g.add_edge(0, 1);
  EXPECT_FALSE(min_cycle_mean_karp(g, {1.0}).has_value());
}

class KarpVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KarpVsBruteForce, MatchesEnumeration) {
  wp::Rng rng(GetParam());
  gen::RandomGraphConfig config;
  config.num_nodes = 7;
  config.edge_probability = 0.3;
  const Digraph g = gen::random_digraph(config, rng);
  std::vector<double> w;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    (void)e;
    w.push_back(static_cast<double>(rng.range(-5, 9)));
  }
  double best = 1e18;
  for (const auto& c : enumerate_cycles(g, 500000)) {
    double sum = 0;
    for (EdgeId e : c.edges) sum += w[static_cast<std::size_t>(e)];
    best = std::min(best, sum / static_cast<double>(c.edges.size()));
  }
  const auto karp = min_cycle_mean_karp(g, w);
  ASSERT_TRUE(karp.has_value());
  EXPECT_NEAR(*karp, best, 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Random, KarpVsBruteForce,
                         ::testing::Range<std::uint64_t>(50, 70));

TEST(Throughput, ReportSortsWorstFirst) {
  Digraph g = gen::ring_graph(2, {1, 0});  // 2-ring with 1 RS total
  g.add_node("solo");
  g.add_edge(2, 2, "self");  // Th 1.0 self-loop
  const auto report = analyze_throughput(g);
  ASSERT_EQ(report.loops.size(), 2u);
  EXPECT_NEAR(report.loops[0].throughput, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(report.loops[0].m, 2);
  EXPECT_EQ(report.loops[0].n, 1);
  EXPECT_NEAR(report.system_throughput, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(system_throughput(g), 2.0 / 3.0, 1e-9);
}

TEST(Optimizer, ExhaustiveFindsBestRelief) {
  // Ring of 3 with demand 2 RS each; relieving one edge to 0 is best and
  // relieving two is better still.
  Digraph g = gen::ring_graph(3, {0});
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    g.edge(e).label = "c" + std::to_string(e);
  RsOptimizeProblem problem;
  for (int i = 0; i < 3; ++i) {
    problem.demand["c" + std::to_string(i)] = 2;
    problem.relieved["c" + std::to_string(i)] = 0;
  }
  problem.max_relieved = 2;
  const auto result = optimize_rs_exhaustive(problem, static_objective(g));
  EXPECT_EQ(result.relieved_connections.size(), 2u);
  EXPECT_NEAR(result.objective, 3.0 / 5.0, 1e-9);  // 3/(3+2)
}

TEST(Optimizer, GreedyMatchesExhaustiveHere) {
  Digraph g = gen::ring_graph(4, {0});
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    g.edge(e).label = "c" + std::to_string(e);
  RsOptimizeProblem problem;
  for (int i = 0; i < 4; ++i) {
    problem.demand["c" + std::to_string(i)] = 1;
    problem.relieved["c" + std::to_string(i)] = 0;
  }
  problem.max_relieved = 3;
  const auto ex = optimize_rs_exhaustive(problem, static_objective(g));
  const auto gr = optimize_rs_greedy(problem, static_objective(g));
  EXPECT_NEAR(ex.objective, gr.objective, 1e-9);
  EXPECT_NEAR(ex.objective, 4.0 / 5.0, 1e-9);
}

TEST(Optimizer, ZeroBudgetKeepsDemand) {
  Digraph g = gen::ring_graph(2, {0});
  g.edge(0).label = "x";
  g.edge(1).label = "y";
  RsOptimizeProblem problem;
  problem.demand = {{"x", 1}, {"y", 1}};
  problem.relieved = {{"x", 0}, {"y", 0}};
  problem.max_relieved = 0;
  const auto result = optimize_rs_exhaustive(problem, static_objective(g));
  EXPECT_TRUE(result.relieved_connections.empty());
  EXPECT_NEAR(result.objective, 0.5, 1e-9);
}

TEST(Dot, ContainsNodesEdgesAndCriticalHighlight) {
  Digraph g = gen::ring_graph(2, {1});
  g.edge(0).label = "hot";
  const std::string dot = to_dot(g, {"title", true, true});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("p0"), std::string::npos);
  EXPECT_NE(dot.find("hot (1 RS)"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(RandomGraphs, RingGraphShape) {
  const Digraph g = gen::ring_graph(5, {1, 2});
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 5);
  // Pattern 1,2 repeats cyclically.
  EXPECT_EQ(g.edge(0).relay_stations, 1);
  EXPECT_EQ(g.edge(1).relay_stations, 2);
  EXPECT_EQ(g.edge(4).relay_stations, 1);
}

TEST(HowardWarmStart, MatchesColdStartAcrossMutations) {
  // Warm-starting from the previous policy must never change the result,
  // only its cost — sweep relay stations across random graphs and compare
  // warm Howard against the parametric reference at every step.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    wp::Rng rng(seed);
    gen::RandomGraphConfig config;
    config.num_nodes = 8;
    Digraph g = gen::random_digraph(config, rng);
    HowardState state;
    for (int step = 0; step < 12; ++step) {
      const EdgeId victim =
          static_cast<EdgeId>(rng.below(static_cast<std::uint64_t>(g.num_edges())));
      g.edge(victim).relay_stations = static_cast<int>(rng.below(4));
      const double warm = min_cycle_ratio_howard(g, &state).ratio;
      const double reference = min_cycle_ratio_lawler(g).ratio;
      ASSERT_NEAR(warm, reference, 1e-9)
          << "seed " << seed << " step " << step;
    }
  }
}

TEST(HowardWarmStart, StaleStateForDifferentGraphIsIgnored) {
  const Digraph small = gen::ring_graph(3, {1});
  HowardState state;
  const double small_ratio = min_cycle_ratio_howard(small, &state).ratio;
  EXPECT_NEAR(small_ratio, 3.0 / 6.0, 1e-12);
  // Same state object against a structurally different graph: must reset,
  // not crash or mis-answer.
  const Digraph big = gen::ring_graph(6, {0, 2});
  const double big_ratio = min_cycle_ratio_howard(big, &state).ratio;
  EXPECT_NEAR(big_ratio, min_cycle_ratio_lawler(big).ratio, 1e-12);
}

TEST(ThroughputEvaluator, MatchesFreshSolvesAndResetsBetweenQueries) {
  Digraph base;
  base.add_node("a");
  base.add_node("b");
  base.add_edge(0, 1, "ab");
  base.add_edge(1, 0, "ba");
  ThroughputEvaluator eval(base);
  // Un-pipelined digon: 2 tokens over latency 2 → Th 1. One RS on ab:
  // Th = m/(m+n) = 2/3.
  EXPECT_NEAR(eval({{"ab", 1}}), 2.0 / 3.0, 1e-12);
  // The previous query's RS counts must not leak into the next one.
  EXPECT_NEAR(eval({{"ba", 2}}), 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(eval({}), 1.0, 1e-12);
  // Unknown labels are ignored.
  EXPECT_NEAR(eval({{"nope", 9}}), 1.0, 1e-12);
  // The RsConfig-shaped entry point agrees with the demand-vector one.
  EXPECT_NEAR(eval.with_rs_map({{"ab", 1}}), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(eval.with_rs_map({{"ab", 1}, {"ba", 1}}), 2.0 / 4.0, 1e-12);
  EXPECT_EQ(eval.queries(), 6u);
}

TEST(RandomGraphs, EnsuresCycleWhenAsked) {
  wp::Rng rng(7);
  gen::RandomGraphConfig config;
  config.num_nodes = 6;
  config.edge_probability = 0.0;
  config.ensure_cycle = true;
  const Digraph g = gen::random_digraph(config, rng);
  EXPECT_FALSE(enumerate_cycles(g).empty());
}

}  // namespace
}  // namespace wp::graph
