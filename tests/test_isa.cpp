// ISA encode/decode, classification helpers, bundle packing round-trips,
// and the assembler (including its error paths).
#include <gtest/gtest.h>

#include "util/assert.hpp"

#include "proc/assembler.hpp"
#include "proc/bundles.hpp"
#include "proc/isa.hpp"
#include "util/rng.hpp"

namespace wp::proc {
namespace {

class EncodeRoundTrip : public ::testing::TestWithParam<Opcode> {};

TEST_P(EncodeRoundTrip, AllFieldsSurvive) {
  wp::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1);
  for (int i = 0; i < 50; ++i) {
    Instr instr;
    instr.op = GetParam();
    instr.rd = static_cast<std::uint8_t>(rng.below(16));
    instr.rs1 = static_cast<std::uint8_t>(rng.below(16));
    instr.rs2 = static_cast<std::uint8_t>(rng.below(16));
    instr.imm = static_cast<std::int32_t>(rng.range(-(1 << 29), (1 << 29)));
    EXPECT_EQ(decode(encode(instr)), instr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EncodeRoundTrip,
    ::testing::Values(Opcode::kNop, Opcode::kHalt, Opcode::kLi, Opcode::kAdd,
                      Opcode::kSub, Opcode::kMul, Opcode::kAnd, Opcode::kOr,
                      Opcode::kXor, Opcode::kAddi, Opcode::kCmp, Opcode::kLd,
                      Opcode::kSt, Opcode::kBeq, Opcode::kBne, Opcode::kBlt,
                      Opcode::kBge, Opcode::kJmp),
    [](const auto& param_info) { return opcode_name(param_info.param); });

TEST(Isa, EncodeRejectsBadFields) {
  Instr instr;
  instr.rd = 16;
  EXPECT_THROW(encode(instr), wp::ContractViolation);
  instr.rd = 0;
  instr.imm = 1 << 30;
  EXPECT_THROW(encode(instr), wp::ContractViolation);
}

TEST(Isa, DecodeRejectsBadOpcode) {
  EXPECT_THROW(decode(Word{63}), wp::ContractViolation);
}

TEST(Isa, Classification) {
  EXPECT_TRUE(is_alu_writeback(Opcode::kAdd));
  EXPECT_TRUE(is_alu_writeback(Opcode::kLi));
  EXPECT_FALSE(is_alu_writeback(Opcode::kCmp));
  EXPECT_FALSE(is_alu_writeback(Opcode::kLd));
  EXPECT_TRUE(is_load(Opcode::kLd));
  EXPECT_TRUE(is_store(Opcode::kSt));
  EXPECT_TRUE(is_mem(Opcode::kLd));
  EXPECT_TRUE(is_branch(Opcode::kBge));
  EXPECT_FALSE(is_branch(Opcode::kJmp));
  EXPECT_TRUE(is_jump(Opcode::kJmp));
  EXPECT_TRUE(reads_rs1(Opcode::kSt));
  EXPECT_TRUE(reads_rs2(Opcode::kSt));
  EXPECT_FALSE(reads_rs1(Opcode::kLi));
  EXPECT_FALSE(reads_rs2(Opcode::kAddi));
  EXPECT_TRUE(needs_alu(Opcode::kLd));
  EXPECT_FALSE(needs_alu(Opcode::kBeq));
}

TEST(Isa, ToStringFormats) {
  EXPECT_EQ(to_string({Opcode::kAddi, 1, 2, 0, -3}), "addi r1, r2, -3");
  EXPECT_EQ(to_string({Opcode::kLd, 4, 5, 0, 8}), "ld r4, 8(r5)");
  EXPECT_EQ(to_string({Opcode::kSt, 0, 5, 6, 8}), "st r6, 8(r5)");
  EXPECT_EQ(to_string({Opcode::kHalt, 0, 0, 0, 0}), "halt");
  EXPECT_EQ(to_string({Opcode::kBlt, 0, 0, 0, 12}), "blt 12");
}

TEST(Bundles, PackUnpackRoundTrips) {
  const FetchReq req{true, 0x12345};
  EXPECT_EQ(FetchReq::unpack(req.pack()).addr, 0x12345u);
  EXPECT_TRUE(FetchReq::unpack(req.pack()).fetch);

  const FetchResp resp{true, encode({Opcode::kMul, 3, 4, 5, 0})};
  EXPECT_EQ(FetchResp::unpack(resp.pack()).instr_word, resp.instr_word);

  RfCtl rf;
  rf.bubble = false;
  rf.rs1 = 15;
  rf.rs2 = 7;
  rf.wb_kind = WbKind::kLoad;
  rf.wb_reg = 9;
  rf.store = true;
  const RfCtl rf2 = RfCtl::unpack(rf.pack());
  EXPECT_EQ(rf2.rs1, 15);
  EXPECT_EQ(rf2.rs2, 7);
  EXPECT_EQ(rf2.wb_kind, WbKind::kLoad);
  EXPECT_EQ(rf2.wb_reg, 9);
  EXPECT_TRUE(rf2.store);
  EXPECT_FALSE(rf2.bubble);

  AluCtl alu;
  alu.bubble = false;
  alu.op = Opcode::kAddi;
  alu.use_imm = true;
  alu.imm = -1000;
  const AluCtl alu2 = AluCtl::unpack(alu.pack());
  EXPECT_EQ(alu2.op, Opcode::kAddi);
  EXPECT_TRUE(alu2.use_imm);
  EXPECT_EQ(alu2.imm, -1000);
  EXPECT_TRUE(alu2.needs_operands());

  const DcCtl dc{false, MemKind::kStore};
  EXPECT_EQ(DcCtl::unpack(dc.pack()).kind, MemKind::kStore);

  const Operands ops{0xFFFF0001u, 0x7FFFFFFFu};
  EXPECT_EQ(Operands::unpack(ops.pack()).a, ops.a);
  EXPECT_EQ(Operands::unpack(ops.pack()).b, ops.b);

  const Flags flags{true, true};
  EXPECT_TRUE(Flags::unpack(flags.pack()).eq);
  EXPECT_TRUE(Flags::unpack(flags.pack()).lt);
}

TEST(Bundles, LiDoesNotNeedOperands) {
  AluCtl alu;
  alu.bubble = false;
  alu.op = Opcode::kLi;
  alu.use_imm = true;
  EXPECT_FALSE(alu.needs_operands());
}

TEST(Assembler, SimpleProgram) {
  const auto result = assemble(R"(
    ; a comment
    li r1, 5        # another comment
    addi r1, r1, -1
    halt
  )");
  ASSERT_EQ(result.rom.size(), 3u);
  EXPECT_EQ(result.listing[0], (Instr{Opcode::kLi, 1, 0, 0, 5}));
  EXPECT_EQ(result.listing[1], (Instr{Opcode::kAddi, 1, 1, 0, -1}));
  EXPECT_EQ(result.listing[2].op, Opcode::kHalt);
}

TEST(Assembler, LabelsResolveForwardAndBackward) {
  const auto result = assemble(R"(
start:  li r1, 0
        jmp skip
        nop
skip:   beq start
        halt
  )");
  EXPECT_EQ(result.listing[1].imm, 3);  // skip
  EXPECT_EQ(result.listing[3].imm, 0);  // start
}

TEST(Assembler, MemoryOperands) {
  const auto result = assemble("ld r2, 8(r3)\nst r4, -2(r5)\nhalt");
  EXPECT_EQ(result.listing[0], (Instr{Opcode::kLd, 2, 3, 0, 8}));
  EXPECT_EQ(result.listing[1], (Instr{Opcode::kSt, 0, 5, 4, -2}));
}

TEST(Assembler, MultipleLabelsOneLine) {
  const auto result = assemble("a: b: nop\njmp b\nhalt");
  EXPECT_EQ(result.listing[1].imm, 0);
}

TEST(Assembler, ErrorsAreLineNumbered) {
  auto expect_error = [](const std::string& src, const std::string& what) {
    try {
      assemble(src);
      FAIL() << "expected failure for: " << src;
    } catch (const wp::ContractViolation& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << e.what();
    }
  };
  expect_error("frob r1", "unknown mnemonic");
  expect_error("li r99, 4", "register out of range");
  expect_error("li r1", "expects 2 operand");
  expect_error("ld r1, r2", "expected imm(rN)");
  expect_error("jmp nowhere", "unknown label");
  expect_error("x: nop\nx: nop", "duplicate label");
  expect_error("", "empty program");
}

}  // namespace
}  // namespace wp::proc
