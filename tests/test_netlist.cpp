// Tests of the netlist language, the process registry, and end-to-end
// execution of parsed systems.
#include <gtest/gtest.h>

#include "util/assert.hpp"

#include "core/netlist_text.hpp"
#include "core/procs.hpp"
#include "core/system.hpp"

namespace wp {
namespace {

const char* kDemo = R"(
# the quickstart system
system demo
process src  counter   start=5 stride=3
process duty dutycycle period=4
process echo identity  reset=0
channel src.out  -> duty.a
channel duty.out -> echo.in
channel echo.out -> duty.b  connection=loopback rs=2
)";

TEST(Netlist, ParsesTheDemoSystem) {
  const ParsedSystem parsed = parse_system(kDemo, default_registry());
  EXPECT_EQ(parsed.name, "demo");
  EXPECT_EQ(parsed.spec.process_names().size(), 3u);
  ASSERT_EQ(parsed.spec.channels().size(), 3u);
  EXPECT_EQ(parsed.spec.channels()[2].connection, "loopback");
  EXPECT_EQ(parsed.spec.channels()[2].relay_stations, 2);
  EXPECT_EQ(parsed.spec.channels()[0].connection, "src-duty");  // default
}

TEST(Netlist, ParsedSystemRunsAndMatchesHandBuilt) {
  const ParsedSystem parsed = parse_system(kDemo, default_registry());

  SystemSpec manual;
  manual.add_process("src", []() {
    return std::make_unique<CounterSource>("src", 5, 3, 0);
  });
  manual.add_process("duty", []() {
    return std::make_unique<DutyCycleProcess>("duty", 4);
  });
  manual.add_process("echo", []() {
    return std::make_unique<IdentityProcess>("echo", 0);
  });
  manual.add_channel("src", "out", "duty", "a");
  manual.add_channel("duty", "out", "echo", "in");
  manual.add_channel("echo", "out", "duty", "b", "loopback");
  manual.set_connection_rs("loopback", 2);

  for (const SystemSpec* spec : {&parsed.spec, static_cast<const SystemSpec*>(&manual)}) {
    ShellOptions wp2;
    wp2.use_oracle = true;
    LidSystem lid = build_lid(*spec, wp2, true);
    for (int i = 0; i < 1000; ++i) lid.network->step();
    EXPECT_NEAR(static_cast<double>(lid.shells.at("duty")->stats().firings) /
                    1000.0,
                2.0 / 3.0, 0.01);
  }

  // τ-filtered traces of the two builds must be identical.
  ShellOptions wp2;
  wp2.use_oracle = true;
  LidSystem a = build_lid(parsed.spec, wp2, true);
  LidSystem b = build_lid(manual, wp2, true);
  for (int i = 0; i < 500; ++i) {
    a.network->step();
    b.network->step();
  }
  EXPECT_EQ(a.trace, b.trace);
}

TEST(Netlist, RsDirectiveAfterChannels) {
  const ParsedSystem parsed = parse_system(R"(
process a identity
process b identity
channel a.out -> b.in connection=link
channel b.out -> a.in
rs link 3
)",
                                           default_registry());
  EXPECT_EQ(parsed.spec.channels()[0].relay_stations, 3);
}

TEST(Netlist, RegistryListsTypesAndRejectsDuplicates) {
  ProcessRegistry registry = default_registry();
  EXPECT_TRUE(registry.contains("counter"));
  EXPECT_TRUE(registry.contains("dutycycle"));
  EXPECT_FALSE(registry.contains("frobnicator"));
  EXPECT_GE(registry.types().size(), 7u);
  EXPECT_THROW(registry.add("counter", [](const ProcessParams&) {
    return ProcessFactory{};
  }),
               ContractViolation);
}

TEST(Netlist, ParameterHelpers) {
  ProcessParams params{{"x", "42"}, {"y", "2.5"}};
  EXPECT_EQ(param_int(params, "x", 0), 42);
  EXPECT_EQ(param_int(params, "missing", 7), 7);
  EXPECT_DOUBLE_EQ(param_double(params, "y", 0), 2.5);
  EXPECT_EQ(param_int_required(params, "x"), 42);
  EXPECT_THROW(param_int_required(params, "missing"), ContractViolation);
}

TEST(Netlist, ErrorsAreLineNumbered) {
  auto expect_error = [](const std::string& src, const std::string& what) {
    try {
      parse_system(src, default_registry());
      FAIL() << "expected failure for: " << src;
    } catch (const ContractViolation& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << e.what();
    }
  };
  expect_error("frob", "unknown directive");
  expect_error("process a nosuchtype", "unknown process type");
  expect_error("process a counter\nprocess a counter", "duplicate process");
  expect_error("process a counter badparam", "key=value");
  expect_error("process a dutycycle", "missing required parameter");
  expect_error("process a identity\nchannel a.out b.in", "->");
  expect_error("process a identity\nchannel aout -> a.in",
               "<process>.<port>");
  expect_error("process a identity\nchannel a.out -> a.in frob=1",
               "unknown channel option");
  expect_error("process a identity\nrs nope 1", "unknown connection");
  expect_error("# nothing", "no processes");
}

TEST(Netlist, RandomMooreFromText) {
  const ParsedSystem parsed = parse_system(R"(
process m1 randommoore inputs=2 outputs=2 states=3 seed=5
process m2 randommoore inputs=2 outputs=2 states=3 seed=6
channel m1.out0 -> m2.in0
channel m1.out1 -> m2.in1
channel m2.out0 -> m1.in0
channel m2.out1 -> m1.in1 rs=2
)",
                                           default_registry());
  GoldenSim golden(parsed.spec, true);
  for (int i = 0; i < 100; ++i) golden.step();
  ShellOptions wp2;
  wp2.use_oracle = true;
  LidSystem lid = build_lid(parsed.spec, wp2, true);
  for (int i = 0; i < 500; ++i) lid.network->step();
  const auto eq = check_equivalence(golden.trace(), lid.trace);
  EXPECT_TRUE(eq.equivalent) << eq.detail;
}

}  // namespace
}  // namespace wp
