// Observability suite: the metrics registry (lock-free recording from many
// threads, log₂-bucket percentiles, deterministic sorted export, reset
// keeping cached references valid), span tracing (runtime gating, tiny-ring
// wraparound with a dropped counter, chrome-trace export that parses as
// JSON), the JsonWriter/Value round trip including NaN/Inf → null, the
// bench_diff regression gate (injected slowdown must fail, identical runs
// must pass, noise floor and direction classes), and the kStatsRequest
// scrape against a live in-process EvalServer — including the adversarial
// payload-carrying scrape which must cost one kError frame, not the
// connection.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/bench_diff.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/eval_client.hpp"
#include "svc/eval_server.hpp"
#include "svc/protocol.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace wp::obs {
namespace {

// -------------------------------------------------------------- registry

TEST(Metrics, CounterGaugeHistogramBasics) {
  Registry registry;
  Counter& c = registry.counter("t/count");
  c.inc();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);

  Gauge& g = registry.gauge("t/depth");
  g.set(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 3);

  Histogram& h = registry.histogram("t/lat_ns");
  h.record(0);
  h.record(1);
  h.record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1001u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1001.0 / 3.0);

  // Same name → same object; registration is idempotent.
  EXPECT_EQ(&registry.counter("t/count"), &c);
  EXPECT_EQ(&registry.histogram("t/lat_ns"), &h);
}

TEST(Metrics, HistogramPercentilesAreOctaveAccurate) {
  Histogram h;
  // 100 values in [1024, 2048): all land in one log₂ bucket.
  for (std::uint64_t i = 0; i < 100; ++i) h.record(1024 + i * 10);
  const double p50 = h.percentile(50.0);
  const double p99 = h.percentile(99.0);
  EXPECT_GE(p50, 1024.0);
  EXPECT_LE(p50, 2048.0);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 2048.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1024.0);
}

TEST(Metrics, ConcurrentRecordingLosesNothing) {
  Registry registry;
  Counter& hits = registry.counter("t/hits");
  Histogram& lat = registry.histogram("t/lat_ns");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hits.inc();
        lat.record(static_cast<std::uint64_t>(t * kPerThread + i));
      }
    });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(hits.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(lat.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Metrics, PoolTasksFeedTheGlobalRegistry) {
  // The shared pool's instrumentation: running tasks must bump
  // util/pool/tasks and record into the wait/run histograms.
  Registry& registry = Registry::global();
  const std::uint64_t tasks_before =
      registry.counter("util/pool/tasks").value();
  const std::uint64_t runs_before =
      registry.histogram("util/pool/task_run_ns").count();

  std::vector<std::future<int>> futures;
  for (int i = 0; i < 16; ++i)
    futures.push_back(ThreadPool::shared().submit([i] { return i; }));
  for (auto& f : futures) f.get();

  EXPECT_GE(registry.counter("util/pool/tasks").value(), tasks_before + 16);
  EXPECT_GE(registry.histogram("util/pool/task_run_ns").count(),
            runs_before + 16);
}

TEST(Metrics, ExportIsDeterministicAndSorted) {
  Registry registry;
  // Register out of order; the snapshot and JSON must sort by name.
  registry.counter("z/last").add(1);
  registry.counter("a/first").add(2);
  registry.gauge("m/mid").set(-7);
  registry.histogram("h/lat_ns").record(42);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a/first");
  EXPECT_EQ(snap.counters[1].first, "z/last");

  const std::string a = registry.to_json();
  const std::string b = registry.to_json();
  EXPECT_EQ(a, b);  // byte-stable under no concurrent recording

  // And it parses back with the same numbers.
  const json::Value doc = json::Value::parse(a);
  const json::Value* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("a/first"), nullptr);
  EXPECT_DOUBLE_EQ(counters->find("a/first")->as_double(), 2.0);
  const json::Value* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("m/mid")->as_double(), -7.0);
  const json::Value* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* lat = hists->find("h/lat_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->find("count")->as_double(), 1.0);
  EXPECT_DOUBLE_EQ(lat->find("max")->as_double(), 42.0);
}

TEST(Metrics, ResetAllKeepsCachedReferencesValid) {
  Registry registry;
  Counter& c = registry.counter("t/count");
  Histogram& h = registry.histogram("t/lat_ns");
  c.add(5);
  h.record(9);
  registry.reset_all();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.inc();  // the reference recorded into the same registered object
  EXPECT_EQ(registry.counter("t/count").value(), 1u);
}

// --------------------------------------------------------------- tracing

TEST(Trace, SpansRecordOnlyWhileEnabled) {
  Tracer& tracer = Tracer::global();
  tracer.disable();
  tracer.clear();
  { WP_SPAN("test/ignored"); }
  EXPECT_EQ(tracer.event_count(), 0u);

  tracer.enable(64);
  { WP_SPAN("test/outer"); { WP_SPAN("test/inner"); } }
  tracer.disable();
#if WP_OBS_TRACING
  EXPECT_EQ(tracer.event_count(), 2u);
#else
  EXPECT_EQ(tracer.event_count(), 0u);
#endif
  tracer.clear();
}

#if WP_OBS_TRACING
TEST(Trace, TinyRingWrapsAroundAndCountsDrops) {
  Tracer& tracer = Tracer::global();
  tracer.disable();
  tracer.clear();
  tracer.enable(/*ring_capacity=*/8);
  for (int i = 0; i < 20; ++i) { WP_SPAN("test/wrap"); }
  tracer.disable();
  EXPECT_EQ(tracer.event_count(), 8u);   // ring holds only the newest 8
  EXPECT_EQ(tracer.dropped_count(), 12u);  // the other 12 were overwritten
  tracer.clear();
}

TEST(Trace, ChromeExportIsValidJsonWithOneEventPerSpan) {
  Tracer& tracer = Tracer::global();
  tracer.disable();
  tracer.clear();
  tracer.enable(64);
  { WP_SPAN("test/a"); }
  { WP_SPAN("test/b"); }
  tracer.disable();

  std::ostringstream os;
  tracer.export_chrome_trace(os);
  const json::Value doc = json::Value::parse(os.str());
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);
  for (std::size_t i = 0; i < events->size(); ++i) {
    const json::Value& e = events->at(i);
    EXPECT_EQ(e.find("ph")->as_string(), "X");
    EXPECT_GE(e.find("dur")->as_double(), 0.0);
    const std::string name = e.find("name")->as_string();
    EXPECT_TRUE(name == "test/a" || name == "test/b") << name;
  }
  tracer.clear();
}
#endif  // WP_OBS_TRACING

// ------------------------------------------------------------ JSON layer

TEST(Json, NonFiniteDoublesEmitNull) {
  std::ostringstream os;
  json::JsonWriter json(os);
  json.begin_object();
  json.field("nan", std::numeric_limits<double>::quiet_NaN());
  json.field("inf", std::numeric_limits<double>::infinity());
  json.field("ninf", -std::numeric_limits<double>::infinity());
  json.field("fine", 1.5);
  json.end_object();

  const json::Value doc = json::Value::parse(os.str());
  EXPECT_TRUE(doc.find("nan")->is_null());
  EXPECT_TRUE(doc.find("inf")->is_null());
  EXPECT_TRUE(doc.find("ninf")->is_null());
  EXPECT_DOUBLE_EQ(doc.find("fine")->as_double(), 1.5);
}

TEST(Json, WriterOutputRoundTripsThroughParser) {
  std::ostringstream os;
  json::JsonWriter json(os);
  json.begin_object();
  json.field("text", "quote \" backslash \\ newline \n");
  json.field("count", 12345678901234ull);
  json.field("neg", -42);
  json.field("flag", true);
  json.key("list").begin_array();
  json.value(1.25).null_value().value("x");
  json.end_array();
  json.end_object();

  const json::Value doc = json::Value::parse(os.str());
  EXPECT_EQ(doc.find("text")->as_string(), "quote \" backslash \\ newline \n");
  EXPECT_DOUBLE_EQ(doc.find("count")->as_double(), 12345678901234.0);
  EXPECT_DOUBLE_EQ(doc.find("neg")->as_double(), -42.0);
  EXPECT_TRUE(doc.find("flag")->as_bool());
  const json::Value* list = doc.find("list");
  ASSERT_EQ(list->size(), 3u);
  EXPECT_TRUE(list->at(1).is_null());
  EXPECT_EQ(list->at(2).as_string(), "x");
}

TEST(Json, ParserRejectsTrailingGarbage) {
  EXPECT_THROW(json::Value::parse("{} trailing"), json::ParseError);
  EXPECT_THROW(json::Value::parse("[1, 2"), json::ParseError);
  EXPECT_THROW(json::Value::parse("NaN"), json::ParseError);
}

// ------------------------------------------------------------ bench_diff

TEST(BenchDiff, DirectionClassificationByKeyTokens) {
  EXPECT_EQ(metric_direction("anneal_ms"), MetricDirection::kLowerIsBetter);
  EXPECT_EQ(metric_direction("reply_p99_ms"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(metric_direction("incremental_us_per_move"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(metric_direction("wait_ns"), MetricDirection::kLowerIsBetter);
  EXPECT_EQ(metric_direction("evals_per_min"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(metric_direction("pool_speedup"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(metric_direction("cache_hit_rate"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(metric_direction("area_mean"), MetricDirection::kInformational);
  // "msg" must not read as a wall-clock token.
  EXPECT_EQ(metric_direction("msg_count"), MetricDirection::kInformational);
}

TEST(BenchDiff, IdenticalRunsPass) {
  const std::string doc =
      "{\"anneal_ms\": 120.0, \"pool_speedup\": 3.5, \"area_mean\": 900.0}";
  const BenchDiffReport report =
      diff_benchmarks(json::Value::parse(doc), json::Value::parse(doc));
  EXPECT_TRUE(report.pass());
  EXPECT_EQ(report.regressions(), 0u);
  EXPECT_EQ(report.deltas.size(), 3u);
}

TEST(BenchDiff, InjectedSlowdownOverThresholdFails) {
  const json::Value baseline =
      json::Value::parse("{\"anneal_ms\": 100.0, \"area_mean\": 900.0}");
  // 30% slower than baseline — over the 25% gate.
  const json::Value fresh =
      json::Value::parse("{\"anneal_ms\": 130.0, \"area_mean\": 900.0}");
  const BenchDiffReport report = diff_benchmarks(baseline, fresh);
  EXPECT_FALSE(report.pass());
  ASSERT_EQ(report.regressions(), 1u);
  for (const MetricDelta& d : report.deltas)
    if (d.regression) {
      EXPECT_EQ(d.path, "anneal_ms");
      EXPECT_NEAR(d.change, 0.30, 1e-9);
    }
  // 20% slower stays under the default gate.
  const json::Value mild = json::Value::parse("{\"anneal_ms\": 120.0}");
  EXPECT_TRUE(
      diff_benchmarks(json::Value::parse("{\"anneal_ms\": 100.0}"), mild)
          .pass());
}

TEST(BenchDiff, SpeedupDropFailsAndSpeedupGainPasses) {
  const json::Value baseline =
      json::Value::parse("{\"pool_speedup\": 4.0}");
  EXPECT_FALSE(
      diff_benchmarks(baseline, json::Value::parse("{\"pool_speedup\": 2.0}"))
          .pass());
  EXPECT_TRUE(
      diff_benchmarks(baseline, json::Value::parse("{\"pool_speedup\": 8.0}"))
          .pass());
}

TEST(BenchDiff, NoiseFloorSkipsTinyTimings) {
  // 0.2 ms → 0.9 ms is a 350% "regression" entirely inside the noise
  // floor; the gate must skip it — visibly.
  const BenchDiffReport report =
      diff_benchmarks(json::Value::parse("{\"stage_ms\": 0.2}"),
                      json::Value::parse("{\"stage_ms\": 0.9}"));
  EXPECT_TRUE(report.pass());
  ASSERT_EQ(report.deltas.size(), 1u);
  EXPECT_TRUE(report.deltas[0].skipped_small);
  EXPECT_FALSE(report.deltas[0].regression);
}

TEST(BenchDiff, MissingMetricInFreshFailsTheGate) {
  const BenchDiffReport report = diff_benchmarks(
      json::Value::parse("{\"anneal_ms\": 100.0, \"gone_ms\": 50.0}"),
      json::Value::parse("{\"anneal_ms\": 100.0, \"new_ms\": 9.0}"));
  EXPECT_FALSE(report.pass());
  ASSERT_EQ(report.missing_in_fresh.size(), 1u);
  EXPECT_EQ(report.missing_in_fresh[0], "gone_ms");
  ASSERT_EQ(report.missing_in_baseline.size(), 1u);
  EXPECT_EQ(report.missing_in_baseline[0], "new_ms");
}

TEST(BenchDiff, InformationalDriftNeverFails) {
  const BenchDiffReport report =
      diff_benchmarks(json::Value::parse("{\"area_mean\": 100.0}"),
                      json::Value::parse("{\"area_mean\": 900.0}"));
  EXPECT_TRUE(report.pass());
  EXPECT_EQ(report.deltas[0].direction, MetricDirection::kInformational);
}

TEST(BenchDiff, NestedArraysAndObjectsKeepTheirPaths) {
  const json::Value baseline = json::Value::parse(
      "{\"packing\": [{\"fast_ms\": 10.0}, {\"fast_ms\": 20.0}]}");
  const json::Value fresh = json::Value::parse(
      "{\"packing\": [{\"fast_ms\": 10.0}, {\"fast_ms\": 40.0}]}");
  const BenchDiffReport report = diff_benchmarks(baseline, fresh);
  EXPECT_FALSE(report.pass());
  ASSERT_EQ(report.regressions(), 1u);
  for (const MetricDelta& d : report.deltas)
    if (d.regression) {
      EXPECT_EQ(d.path, "packing[1].fast_ms");
    }
}

TEST(BenchDiff, ReportJsonParsesAndCarriesTheVerdict) {
  const BenchDiffReport report =
      diff_benchmarks(json::Value::parse("{\"anneal_ms\": 100.0}"),
                      json::Value::parse("{\"anneal_ms\": 200.0}"));
  std::ostringstream os;
  json::JsonWriter json(os);
  write_diff_report(report, BenchDiffOptions{}, json);
  const json::Value doc = json::Value::parse(os.str());
  EXPECT_EQ(doc.find("schema")->as_string(), "wirepipe-bench-diff/1");
  EXPECT_FALSE(doc.find("pass")->as_bool());
  EXPECT_DOUBLE_EQ(doc.find("regressions")->as_double(), 1.0);
}

// ------------------------------------------------------------ stats scrape

std::string unique_socket_path() {
  static int counter = 0;
  return "/tmp/wp_obs_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

svc::EvalServerOptions test_server_options() {
  svc::EvalServerOptions options;
  options.socket_path = unique_socket_path();
  options.workers = 2;
  options.oracle.use_env_persist = false;
  options.oracle.use_env_trace_mode = false;
  return options;
}

TEST(StatsScrape, LiveServerAnswersWithParsableStatsDocument) {
  svc::EvalServer server(test_server_options());
  server.start();

  svc::EvalClient client;
  client.connect(server.socket_path(), /*retries=*/10, /*retry_ms=*/50);
  const std::string stats = client.stats_json();
  const json::Value doc = json::Value::parse(stats);
  EXPECT_EQ(doc.find("schema")->as_string(), "wirepipe-stats/1");
  const json::Value* srv = doc.find("server");
  ASSERT_NE(srv, nullptr);
  EXPECT_DOUBLE_EQ(srv->find("workers")->as_double(), 2.0);
  // The scrape itself is a frame, so the server has seen at least one.
  EXPECT_GE(srv->find("frames")->as_double(), 1.0);
  ASSERT_NE(doc.find("golden_cache"), nullptr);
  ASSERT_NE(doc.find("spec_cache"), nullptr);
  // The full registry rides along (pool metrics are always registered by
  // the server's own worker pool).
  const json::Value* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->find("counters"), nullptr);

  // The connection still evaluates after a scrape.
  EXPECT_TRUE(client.ping());
  client.close();
  server.stop();
}

TEST(StatsScrape, ScrapeReflectsServedRequests) {
  svc::EvalServer server(test_server_options());
  server.start();

  svc::EvalClient client;
  client.connect(server.socket_path(), /*retries=*/10, /*retry_ms=*/50);
  std::vector<eval::EvalRequest> requests;
  for (int i = 0; i < 3; ++i) {
    eval::FloorplanJob job;
    job.topology.family = gen::TopologyFamily::kMesh;
    job.topology.num_nodes = 9;
    job.seed = 70 + static_cast<std::uint64_t>(i);
    job.anneal.iterations = 12;
    requests.emplace_back(std::move(job));
  }
  client.evaluate(requests);

  const json::Value doc = json::Value::parse(client.stats_json());
  EXPECT_DOUBLE_EQ(doc.find("server")->find("requests")->as_double(), 3.0);
  client.close();
  server.stop();
}

TEST(StatsScrape, PayloadCarryingScrapeCostsOneErrorFrameNotTheConnection) {
  svc::EvalServer server(test_server_options());
  server.start();

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, server.socket_path().c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);

  // A kStatsRequest must be empty; a payload is a malformed request.
  svc::write_frame(fd, svc::FrameType::kStatsRequest, "unexpected");
  auto reply = svc::read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, svc::FrameType::kError);
  EXPECT_EQ(svc::decode_error(reply->payload).code,
            eval::ErrorCode::kMalformedRequest);

  // Same connection, well-formed scrape: still served.
  svc::write_frame(fd, svc::FrameType::kStatsRequest, "");
  auto good = svc::read_frame(fd);
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->type, svc::FrameType::kStatsReply);
  EXPECT_EQ(json::Value::parse(good->payload).find("schema")->as_string(),
            "wirepipe-stats/1");

  ::close(fd);
  server.stop();
  EXPECT_EQ(server.stats().dropped_connections, 0u);
  EXPECT_GE(server.stats().error_frames, 1u);
}

TEST(StatsScrape, FrameCodecRoundTripsTheNewTypes) {
  const std::string request =
      svc::encode_frame(svc::FrameType::kStatsRequest, "");
  const svc::Frame decoded_request =
      svc::decode_frame(request.data(), request.size());
  EXPECT_EQ(decoded_request.type, svc::FrameType::kStatsRequest);
  EXPECT_TRUE(decoded_request.payload.empty());

  const std::string reply_payload = "{\"schema\": \"wirepipe-stats/1\"}";
  const std::string reply =
      svc::encode_frame(svc::FrameType::kStatsReply, reply_payload);
  const svc::Frame decoded_reply =
      svc::decode_frame(reply.data(), reply.size());
  EXPECT_EQ(decoded_reply.type, svc::FrameType::kStatsReply);
  EXPECT_EQ(decoded_reply.payload, reply_payload);
}

}  // namespace
}  // namespace wp::obs
