// Differential guardrail for the fast packing engines: pack_fast(),
// IncrementalPacker and BatchedMoveEvaluator must be *bitwise* identical
// to the naive O(n²) pack() on randomized instances across sizes,
// including through long randomized move/undo chains, across the
// delta-vs-full-repack fallback paths, and across every batched
// evaluation path (persistent dominance index / incremental shared prime
// / full repack) and window size K. Also pins down the move involution
// invariants (apply+undo restores both permutations for every SpMove
// kind, i == j degenerate cases included), the exactness of the batched
// evaluator's dirty-block reports, and the engine-independence of the
// annealer: naive, fast and batched runs of the same seed produce
// the same trajectory, serial and pooled restarts the same best, and the
// ensemble pipeline the same samples.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/assert.hpp"

#include "floorplan/annealer.hpp"
#include "floorplan/batch_pack.hpp"
#include "floorplan/instances.hpp"
#include "floorplan/model.hpp"
#include "floorplan/pack_engine.hpp"
#include "floorplan/sequence_pair.hpp"
#include "gen/ensemble.hpp"
#include "graph/throughput.hpp"
#include "proc/cpu.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wp::fplan {
namespace {

::testing::AssertionResult placements_identical(const Placement& a,
                                                const Placement& b) {
  if (a.x != b.x || a.y != b.y || a.width != b.width ||
      a.height != b.height) {
    auto result = ::testing::AssertionFailure()
                  << "placements diverge: bbox (" << a.width << " x "
                  << a.height << ") vs (" << b.width << " x " << b.height
                  << ")";
    for (std::size_t i = 0; i < a.x.size() && i < b.x.size(); ++i)
      if (a.x[i] != b.x[i] || a.y[i] != b.y[i])
        result << "; block " << i << " at (" << a.x[i] << "," << a.y[i]
               << ") vs (" << b.x[i] << "," << b.y[i] << ")";
    return result;
  }
  return ::testing::AssertionSuccess();
}

/// Randomized instance of the requested size (synthetic_instance needs
/// n >= 2; the single-block case is built by hand).
Instance instance_of(std::size_t n, std::uint64_t seed) {
  if (n >= 2) return synthetic_instance(n, seed);
  Instance inst;
  inst.name = "one";
  inst.blocks = {{"solo", 1.7, 0.9}};
  return inst;
}

class PackEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PackEquivalence, FastMatchesNaiveOnRandomSequencePairs) {
  const std::size_t n = GetParam();
  const Instance inst = instance_of(n, 31 * n + 1);
  wp::Rng rng(1000 + n);
  const int rounds = n >= 100 ? 40 : 200;
  for (int round = 0; round < rounds; ++round) {
    const SequencePair sp = SequencePair::random(n, rng);
    ASSERT_TRUE(placements_identical(pack_fast(inst, sp), pack(inst, sp)))
        << "n=" << n << " round " << round;
  }
}

TEST_P(PackEquivalence, IncrementalConstructionMatchesNaive) {
  const std::size_t n = GetParam();
  const Instance inst = instance_of(n, 17 * n + 3);
  wp::Rng rng(2000 + n);
  const SequencePair sp = SequencePair::random(n, rng);
  const IncrementalPacker packer(inst, sp);
  ASSERT_TRUE(placements_identical(packer.placement(), pack(inst, sp)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PackEquivalence,
                         ::testing::Values<std::size_t>(1, 2, 3, 8, 32, 128));

TEST(PackEquivalence, FastMatchesNaiveOnStructuredPairs) {
  const Instance inst = cpu_instance();
  const std::size_t n = inst.blocks.size();
  SequencePair identity = SequencePair::identity(n);
  ASSERT_TRUE(
      placements_identical(pack_fast(inst, identity), pack(inst, identity)));
  SequencePair stacked = identity;  // reversed Γ+: a vertical stack
  std::reverse(stacked.positive.begin(), stacked.positive.end());
  ASSERT_TRUE(
      placements_identical(pack_fast(inst, stacked), pack(inst, stacked)));
}

class IncrementalEquivalence : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(IncrementalEquivalence, RandomMoveUndoChainsMatchNaive) {
  const std::size_t n = GetParam();
  const Instance inst = instance_of(n, 7 * n + 5);
  wp::Rng rng(3000 + n);
  SequencePair sp = SequencePair::random(n, rng);
  IncrementalPacker packer(inst, sp);
  const int moves = n >= 100 ? 150 : 400;
  for (int m = 0; m < moves; ++m) {
    const AppliedMove move = random_move(sp, rng);
    const Placement& candidate = packer.apply(move);
    ASSERT_TRUE(placements_identical(candidate, pack(inst, sp)))
        << "n=" << n << " move " << m << " kind "
        << static_cast<int>(move.kind) << " i=" << move.i << " j=" << move.j;
    if (rng.chance(0.5)) {  // reject path: undo + revert must restore
      undo_move(sp, move);
      packer.revert();
      ASSERT_TRUE(placements_identical(packer.placement(), pack(inst, sp)))
          << "n=" << n << " after revert of move " << m;
      ASSERT_EQ(packer.sequence_pair().positive, sp.positive);
      ASSERT_EQ(packer.sequence_pair().negative, sp.negative);
    }
  }
  EXPECT_GT(packer.delta_packs() + packer.full_packs(),
            static_cast<std::size_t>(0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, IncrementalEquivalence,
                         ::testing::Values<std::size_t>(2, 3, 8, 32, 128));

TEST(IncrementalPacker, FallbackAndDeltaPathsAgree) {
  const Instance inst = synthetic_instance(32, 9);
  wp::Rng rng(11);
  SequencePair sp = SequencePair::random(32, rng);
  IncrementalPacker always_full(inst, sp, 0.0);
  IncrementalPacker always_delta(inst, sp, 1.0);
  for (int m = 0; m < 250; ++m) {
    const AppliedMove move = random_move(sp, rng);
    const Placement& via_full = always_full.apply(move);
    const Placement& via_delta = always_delta.apply(move);
    ASSERT_TRUE(placements_identical(via_full, via_delta)) << "move " << m;
    if (rng.chance(0.3)) {
      undo_move(sp, move);
      always_full.revert();
      always_delta.revert();
      ASSERT_TRUE(placements_identical(always_full.placement(),
                                       always_delta.placement()));
    }
  }
  EXPECT_EQ(always_full.delta_packs(), 0u);
  EXPECT_EQ(always_delta.full_packs(), 0u);
}

TEST(IncrementalPacker, DegenerateEqualIndexMovesAreNoOps) {
  const Instance inst = synthetic_instance(8, 4);
  wp::Rng rng(5);
  const SequencePair sp = SequencePair::random(8, rng);
  for (const SpMove kind :
       {SpMove::kSwapPositive, SpMove::kSwapNegative, SpMove::kSwapBoth}) {
    IncrementalPacker packer(inst, sp);
    const Placement before = packer.placement();
    const AppliedMove degenerate{kind, 3, 3};
    ASSERT_TRUE(placements_identical(packer.apply(degenerate), before));
    EXPECT_EQ(packer.sequence_pair().positive, sp.positive);
    EXPECT_EQ(packer.sequence_pair().negative, sp.negative);
    packer.revert();
    ASSERT_TRUE(placements_identical(packer.placement(), before));
  }
}

TEST(IncrementalPacker, ResetResynchronisesToArbitraryPairs) {
  const Instance inst = synthetic_instance(12, 6);
  wp::Rng rng(21);
  SequencePair sp = SequencePair::random(12, rng);
  IncrementalPacker packer(inst, sp);
  for (int round = 0; round < 10; ++round) {
    const SequencePair fresh = SequencePair::random(12, rng);
    packer.reset(fresh);
    ASSERT_TRUE(placements_identical(packer.placement(), pack(inst, fresh)));
  }
}

TEST(IncrementalPacker, RejectsInvalidInput) {
  const Instance inst = synthetic_instance(6, 2);
  wp::Rng rng(3);
  SequencePair sp = SequencePair::random(6, rng);
  EXPECT_THROW(IncrementalPacker(inst, SequencePair::identity(4)),
               wp::ContractViolation);
  IncrementalPacker packer(inst, sp);
  EXPECT_THROW(packer.revert(), wp::ContractViolation);  // nothing applied
  EXPECT_THROW(packer.apply({SpMove::kSwapBoth, 0, 6}),
               wp::ContractViolation);
}

// ----------------------------------------- batched speculative engine

class BatchedEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchedEquivalence, SpeculativeChainsMatchNaiveForEveryWindowSize) {
  // Reject-biased chains (the annealing-tail regime the evaluator exists
  // for) through every window size: each candidate, each revert and each
  // commit must leave the evaluator bitwise equal to a fresh naive pack.
  // The same seed drives every K, so this also proves the chain the
  // evaluator walks — and therefore the trajectory — is K-independent.
  const std::size_t n = GetParam();
  const Instance inst = instance_of(n, 13 * n + 7);
  for (const std::size_t k : {std::size_t{1}, std::size_t{4},
                              std::size_t{16}}) {
    wp::Rng rng(4000 + n);
    SequencePair sp = SequencePair::random(n, rng);
    BatchOptions options;
    options.batch_size = k;
    BatchedMoveEvaluator evaluator(inst, sp, options);
    const int moves = n >= 100 ? 150 : 400;
    for (int m = 0; m < moves; ++m) {
      const AppliedMove move = random_move(sp, rng);
      ASSERT_TRUE(placements_identical(evaluator.apply(move), pack(inst, sp)))
          << "n=" << n << " K=" << k << " move " << m << " kind "
          << static_cast<int>(move.kind) << " i=" << move.i
          << " j=" << move.j;
      if (rng.chance(0.7)) {  // reject: undo + revert must restore baseline
        undo_move(sp, move);
        evaluator.revert();
        ASSERT_TRUE(
            placements_identical(evaluator.placement(), pack(inst, sp)))
            << "n=" << n << " K=" << k << " after revert of move " << m;
        ASSERT_EQ(evaluator.sequence_pair().positive, sp.positive);
        ASSERT_EQ(evaluator.sequence_pair().negative, sp.negative);
      } else {
        evaluator.commit();
      }
    }
    EXPECT_EQ(evaluator.stats().candidates,
              static_cast<std::uint64_t>(moves));
    EXPECT_EQ(evaluator.stats().persistent_evals +
                  evaluator.stats().prime_evals +
                  evaluator.stats().full_packs,
              static_cast<std::uint64_t>(moves));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatchedEquivalence,
                         ::testing::Values<std::size_t>(2, 3, 8, 32, 128));

TEST(BatchedMoveEvaluator, AllEvaluationPathsAgreeOnTheSameChain) {
  // Force each path: persistent_fraction = 1 with batch_size 1 rebuilds
  // the dominance index after every rejected window, so nearly every
  // candidate runs through the persistent structure; persistent_fraction
  // = 0 forces the incremental shared-prime path; fallback_fraction = 0
  // forces full repacks. All three walk the same move chain and must stay
  // bitwise identical to naive pack() throughout.
  const std::size_t n = 48;
  const Instance inst = synthetic_instance(n, 29);
  wp::Rng rng(31);
  SequencePair sp = SequencePair::random(n, rng);

  BatchOptions persistent;
  persistent.batch_size = 1;
  persistent.persistent_fraction = 1.0;
  persistent.fallback_fraction = 1.0;
  BatchOptions primed;
  primed.persistent_fraction = 0.0;
  primed.fallback_fraction = 1.0;
  BatchOptions full;
  full.fallback_fraction = 0.0;

  BatchedMoveEvaluator via_index(inst, sp, persistent);
  BatchedMoveEvaluator via_prime(inst, sp, primed);
  BatchedMoveEvaluator via_full(inst, sp, full);
  for (int m = 0; m < 300; ++m) {
    const AppliedMove move = random_move(sp, rng);
    const Placement& reference = pack(inst, sp);
    ASSERT_TRUE(placements_identical(via_index.apply(move), reference))
        << "persistent path, move " << m;
    ASSERT_TRUE(placements_identical(via_prime.apply(move), reference))
        << "prime path, move " << m;
    ASSERT_TRUE(placements_identical(via_full.apply(move), reference))
        << "full path, move " << m;
    if (rng.chance(0.6)) {
      undo_move(sp, move);
      via_index.revert();
      via_prime.revert();
      via_full.revert();
    } else {
      via_index.commit();
      via_prime.commit();
      via_full.commit();
    }
  }
  EXPECT_EQ(via_full.stats().persistent_evals, 0u);
  EXPECT_EQ(via_full.stats().prime_evals, 0u);
  EXPECT_GT(via_index.stats().persistent_evals, 0u);
  EXPECT_GT(via_index.stats().index_rebuilds, 0u);
  EXPECT_EQ(via_prime.stats().persistent_evals, 0u);
  EXPECT_GT(via_prime.stats().prime_evals, 0u);
  EXPECT_GT(via_prime.stats().reprime_positions_saved, 0u);
}

TEST(BatchedMoveEvaluator, ImplicitCommitMatchesExplicitCommit) {
  // apply() while a candidate is pending commits it — the same ergonomics
  // IncrementalPacker's apply-after-apply has. An accept-every-move chain
  // driven that way must walk the same states as one with explicit
  // commit() calls, and both must track naive pack().
  const Instance inst = synthetic_instance(24, 41);
  wp::Rng rng(43);
  SequencePair sp = SequencePair::random(24, rng);
  BatchedMoveEvaluator implicit(inst, sp);
  BatchedMoveEvaluator explicit_commit(inst, sp);
  for (int m = 0; m < 120; ++m) {
    const AppliedMove move = random_move(sp, rng);
    implicit.apply(move);  // previous candidate (if any) commits here
    explicit_commit.apply(move);
    explicit_commit.commit();
    ASSERT_TRUE(placements_identical(implicit.placement(),
                                     explicit_commit.placement()))
        << "move " << m;
    ASSERT_TRUE(
        placements_identical(explicit_commit.placement(), pack(inst, sp)))
        << "move " << m;
  }
  EXPECT_EQ(implicit.stats().commits + 1, explicit_commit.stats().commits);
}

TEST(BatchedMoveEvaluator, FallbackBoundariesAndDegenerateMoves) {
  const Instance inst = synthetic_instance(8, 4);
  wp::Rng rng(5);
  const SequencePair sp = SequencePair::random(8, rng);
  // Degenerate i == j moves are no-ops on every path and revert cleanly.
  for (const SpMove kind :
       {SpMove::kSwapPositive, SpMove::kSwapNegative, SpMove::kSwapBoth}) {
    BatchedMoveEvaluator evaluator(inst, sp);
    const Placement before = evaluator.placement();
    const AppliedMove degenerate{kind, 5, 5};
    ASSERT_TRUE(placements_identical(evaluator.apply(degenerate), before));
    EXPECT_EQ(evaluator.sequence_pair().positive, sp.positive);
    EXPECT_EQ(evaluator.sequence_pair().negative, sp.negative);
    evaluator.revert();
    ASSERT_TRUE(placements_identical(evaluator.placement(), before));
    // ... and committing one must not invalidate the baseline structures.
    evaluator.apply(degenerate);
    evaluator.commit();
    ASSERT_TRUE(placements_identical(evaluator.placement(), before));
  }
  // The smallest legal instance exercises the n == 2 boundary where every
  // move dirties everything.
  const Instance tiny = synthetic_instance(2, 6);
  wp::Rng tiny_rng(7);
  SequencePair tiny_sp = SequencePair::random(2, tiny_rng);
  BatchedMoveEvaluator evaluator(tiny, tiny_sp);
  for (int m = 0; m < 50; ++m) {
    const AppliedMove move = random_move(tiny_sp, tiny_rng);
    ASSERT_TRUE(
        placements_identical(evaluator.apply(move), pack(tiny, tiny_sp)));
    undo_move(tiny_sp, move);
    evaluator.revert();
  }
}

TEST(BatchedMoveEvaluator, ResetResynchronisesToArbitraryPairs) {
  const Instance inst = synthetic_instance(12, 6);
  wp::Rng rng(21);
  SequencePair sp = SequencePair::random(12, rng);
  BatchedMoveEvaluator evaluator(inst, sp);
  for (int round = 0; round < 10; ++round) {
    const SequencePair fresh = SequencePair::random(12, rng);
    evaluator.reset(fresh);
    ASSERT_TRUE(
        placements_identical(evaluator.placement(), pack(inst, fresh)));
  }
}

TEST(BatchedMoveEvaluator, MisuseDiesLoudly) {
  const Instance inst = synthetic_instance(6, 2);
  wp::Rng rng(3);
  SequencePair sp = SequencePair::random(6, rng);
  EXPECT_THROW(BatchedMoveEvaluator(inst, SequencePair::identity(4)),
               wp::ContractViolation);
  BatchedMoveEvaluator evaluator(inst, sp);
  EXPECT_THROW(evaluator.commit(), wp::ContractViolation);  // nothing pending
  EXPECT_THROW(evaluator.revert(), wp::ContractViolation);
  EXPECT_THROW(evaluator.apply({SpMove::kSwapBoth, 0, 6}),
               wp::ContractViolation);
  const AppliedMove move = random_move(sp, rng);
  evaluator.apply(move);
  undo_move(sp, move);
  evaluator.revert();
  EXPECT_THROW(evaluator.revert(), wp::ContractViolation);  // double revert
  BatchOptions bad;
  bad.batch_size = 0;
  EXPECT_THROW(BatchedMoveEvaluator(inst, sp, bad), wp::ContractViolation);
}

TEST(IncrementalPacker, DoubleRevertDiesLoudly) {
  // Pins the loud-failure contract: revert() is one level deep, and a
  // second revert() without an intervening apply() must throw rather than
  // silently corrupt the placement.
  const Instance inst = synthetic_instance(10, 8);
  wp::Rng rng(9);
  SequencePair sp = SequencePair::random(10, rng);
  IncrementalPacker packer(inst, sp);
  const AppliedMove move = random_move(sp, rng);
  packer.apply(move);
  undo_move(sp, move);
  packer.revert();
  EXPECT_THROW(packer.revert(), wp::ContractViolation);
}

// ------------------------------------------------ dirty-block reports

TEST(BatchedEvaluator, DirtyBlocksExactOnEveryPath) {
  // dirty_blocks() must list exactly the blocks whose coordinates the
  // candidate changed — no more, no fewer — on every evaluation path,
  // including the full-repack fallback (which diffs against the saved
  // baseline rather than reporting "everything").
  const std::size_t n = 32;
  const Instance inst = synthetic_instance(n, 19);
  for (const double fallback : {0.0, 0.75}) {
    wp::Rng rng(23);
    SequencePair sp = SequencePair::random(n, rng);
    BatchOptions options;
    options.fallback_fraction = fallback;
    BatchedMoveEvaluator evaluator(inst, sp, options);
    Placement baseline = evaluator.placement();
    for (int m = 0; m < 300; ++m) {
      const AppliedMove move = random_move(sp, rng);
      const Placement& candidate = evaluator.apply(move);
      if (fallback == 0.0 && move.i != move.j) {
        ASSERT_TRUE(evaluator.last_was_full());
      }
      std::vector<bool> reported(n, false);
      for (const std::uint32_t b : evaluator.dirty_blocks()) {
        ASSERT_LT(b, n);
        ASSERT_FALSE(reported[b]) << "duplicate dirty report, move " << m;
        reported[b] = true;
      }
      for (std::size_t b = 0; b < n; ++b) {
        const bool moved = candidate.x[b] != baseline.x[b] ||
                           candidate.y[b] != baseline.y[b];
        ASSERT_EQ(reported[b], moved) << "block " << b << ", move " << m;
      }
      if (rng.chance(0.6)) {
        undo_move(sp, move);
        evaluator.revert();
      } else {
        evaluator.commit();
        baseline = evaluator.placement();
      }
    }
  }
}

// --------------------------------------------------------------- moves

TEST(Moves, ApplyTwiceIsIdentityForEveryKind) {
  wp::Rng rng(8);
  SequencePair sp = SequencePair::random(9, rng);
  const SequencePair original = sp;
  const std::vector<std::pair<std::size_t, std::size_t>> index_pairs = {
      {0, 5}, {5, 0}, {8, 1}, {3, 3}, {0, 0}, {8, 8}, {2, 7}};
  for (const SpMove kind :
       {SpMove::kSwapPositive, SpMove::kSwapNegative, SpMove::kSwapBoth}) {
    for (const auto& [i, j] : index_pairs) {
      const AppliedMove move{kind, i, j};
      apply_move(sp, move);
      apply_move(sp, move);
      ASSERT_EQ(sp.positive, original.positive)
          << "kind " << static_cast<int>(kind) << " i=" << i << " j=" << j;
      ASSERT_EQ(sp.negative, original.negative);
    }
  }
}

TEST(Moves, UndoRestoresBothPermutationsForEveryKind) {
  wp::Rng rng(13);
  SequencePair sp = SequencePair::random(7, rng);
  const SequencePair original = sp;
  for (const SpMove kind :
       {SpMove::kSwapPositive, SpMove::kSwapNegative, SpMove::kSwapBoth}) {
    for (std::size_t i = 0; i < 7; ++i)
      for (std::size_t j = 0; j < 7; ++j) {  // includes every i == j case
        const AppliedMove move{kind, i, j};
        apply_move(sp, move);
        undo_move(sp, move);
        ASSERT_EQ(sp.positive, original.positive);
        ASSERT_EQ(sp.negative, original.negative);
      }
  }
}

TEST(Moves, EqualIndexMovesAreNoOps) {
  wp::Rng rng(2);
  SequencePair sp = SequencePair::random(5, rng);
  const SequencePair original = sp;
  for (const SpMove kind :
       {SpMove::kSwapPositive, SpMove::kSwapNegative, SpMove::kSwapBoth}) {
    apply_move(sp, {kind, 2, 2});
    EXPECT_EQ(sp.positive, original.positive);
    EXPECT_EQ(sp.negative, original.negative);
  }
}

TEST(Moves, RandomMoveDrawsDistinctIndicesAndValidKinds) {
  wp::Rng rng(55);
  SequencePair sp = SequencePair::random(6, rng);
  for (int it = 0; it < 500; ++it) {
    const SequencePair before = sp;
    const AppliedMove move = random_move(sp, rng);
    EXPECT_NE(move.i, move.j);
    EXPECT_LT(static_cast<int>(move.kind), static_cast<int>(SpMove::kCount));
    EXPECT_LT(move.i, 6u);
    EXPECT_LT(move.j, 6u);
    undo_move(sp, move);
    ASSERT_EQ(sp.positive, before.positive);
    ASSERT_EQ(sp.negative, before.negative);
  }
}

// ----------------------------------------------- annealer determinism

bool identical_results(const AnnealResult& a, const AnnealResult& b) {
  return a.cost == b.cost && a.area == b.area &&
         a.wirelength == b.wirelength && a.throughput == b.throughput &&
         a.seed == b.seed && a.accepted_moves == b.accepted_moves &&
         a.evaluations == b.evaluations &&
         a.sequence_pair.positive == b.sequence_pair.positive &&
         a.sequence_pair.negative == b.sequence_pair.negative &&
         a.placement.x == b.placement.x && a.placement.y == b.placement.y &&
         a.placement.width == b.placement.width &&
         a.placement.height == b.placement.height;
}

TEST(AnnealerEngines, AreaDrivenRunsAreBitIdenticalAcrossEngines) {
  const Instance inst = synthetic_instance(16, 3);
  AnnealOptions naive;
  naive.iterations = 2500;
  naive.seed = 17;
  naive.pack_engine = PackEngine::kNaive;
  AnnealOptions fast = naive;
  fast.pack_engine = PackEngine::kFast;
  const AnnealResult reference = anneal(inst, naive);
  EXPECT_TRUE(identical_results(reference, anneal(inst, fast)));
  // The batched engine must reproduce the serial naive trajectory exactly
  // for every speculation-window size — K amortizes baseline work, it
  // never reorders RNG draws or decisions.
  for (const std::size_t k : {std::size_t{1}, std::size_t{4},
                              std::size_t{16}}) {
    AnnealOptions batched = naive;
    batched.pack_engine = PackEngine::kBatched;
    batched.speculation_batch = k;
    EXPECT_TRUE(identical_results(reference, anneal(inst, batched)))
        << "K=" << k;
  }
}

TEST(AnnealerEngines, ThroughputDrivenRunsAreBitIdenticalAcrossEngines) {
  const Instance inst = cpu_instance();
  const auto graph = wp::proc::make_cpu_graph();
  AnnealOptions naive;
  naive.iterations = 1200;
  naive.seed = 23;
  naive.weight_throughput = 200.0;
  naive.delay_model.clock_ps = 300.0;
  naive.throughput_fn = wp::graph::ThroughputEvaluator(graph);
  naive.pack_engine = PackEngine::kNaive;
  AnnealOptions fast = naive;
  fast.throughput_fn = wp::graph::ThroughputEvaluator(graph);
  fast.pack_engine = PackEngine::kFast;
  AnnealOptions batched = naive;
  batched.throughput_fn = wp::graph::ThroughputEvaluator(graph);
  batched.pack_engine = PackEngine::kBatched;
  const AnnealResult reference = anneal(inst, naive);
  EXPECT_TRUE(identical_results(reference, anneal(inst, fast)));
  EXPECT_TRUE(identical_results(reference, anneal(inst, batched)));
}

TEST(AnnealerEngines, PooledRestartsMatchSerialForBothEngines) {
  // Extends the PR 2 sequential≡pooled guarantee to the floorplan path:
  // for each engine, anneal_parallel must reproduce the sequential best-of
  // exactly, and the two engines must land on the same best.
  const Instance inst = synthetic_instance(12, 5);
  AnnealResult best_per_engine[3];
  int engine_index = 0;
  for (const PackEngine engine :
       {PackEngine::kNaive, PackEngine::kFast, PackEngine::kBatched}) {
    ParallelAnnealOptions job;
    job.base.iterations = 1200;
    job.base.seed = 100;
    job.base.pack_engine = engine;
    job.restarts = 4;

    AnnealResult sequential;
    for (int i = 0; i < job.restarts; ++i) {
      AnnealOptions options = job.base;
      options.seed = job.base.seed + static_cast<std::uint64_t>(i);
      AnnealResult restart = anneal(inst, options);
      if (i == 0 || restart.cost < sequential.cost)
        sequential = std::move(restart);
    }
    for (const std::size_t workers : {1u, 4u}) {
      wp::ThreadPool pool(workers);
      job.pool = &pool;
      EXPECT_TRUE(identical_results(sequential, anneal_parallel(inst, job)))
          << pack_engine_name(engine) << " engine, " << workers
          << " workers";
    }
    best_per_engine[engine_index++] = sequential;
  }
  EXPECT_TRUE(identical_results(best_per_engine[0], best_per_engine[1]));
  EXPECT_TRUE(identical_results(best_per_engine[0], best_per_engine[2]));
}

TEST(AnnealerEngines, EnsemblePipelineIsEngineIndependent) {
  // The ensemble runner inherits the engine through its AnnealOptions; the
  // whole generate→floorplan→RS→throughput pipeline must produce identical
  // samples either way (anneal_ms excluded from equality by design).
  gen::EnsembleConfig config;
  config.seed = 77;
  config.samples_per_family = 3;
  config.anneal.iterations = 400;
  gen::FamilySpec family;
  family.name = "ba-12";
  family.topology.family = gen::TopologyFamily::kBarabasiAlbert;
  family.topology.num_nodes = 12;
  family.topology.ba_attach = 2;
  config.families.push_back(family);

  config.anneal.pack_engine = PackEngine::kNaive;
  const gen::EnsembleReport with_naive = gen::run_ensemble_sequential(config);
  config.anneal.pack_engine = PackEngine::kFast;
  const gen::EnsembleReport with_fast = gen::run_ensemble_sequential(config);
  config.anneal.pack_engine = PackEngine::kBatched;
  const gen::EnsembleReport with_batched =
      gen::run_ensemble_sequential(config);
  ASSERT_EQ(with_naive.samples.size(), with_fast.samples.size());
  ASSERT_EQ(with_naive.samples.size(), with_batched.samples.size());
  for (std::size_t i = 0; i < with_naive.samples.size(); ++i) {
    EXPECT_TRUE(with_naive.samples[i] == with_fast.samples[i])
        << "sample " << i << " diverged between engines";
    EXPECT_TRUE(with_naive.samples[i] == with_batched.samples[i])
        << "sample " << i << " diverged between naive and batched";
  }
}

}  // namespace
}  // namespace wp::fplan
