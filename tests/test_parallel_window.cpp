// Differential guardrail for the parallel speculative engine:
// PackEngine::kParallel must reproduce the serial annealing trajectory
// *bitwise* — same accepted moves, same placements, same RNG consumption,
// same oracle query stream — at every thread count and window size K.
// Also pins down the wasted-speculation accounting (drawn = used + wasted
// exactly, thread-count-invariant), the revert/commit chain of the
// ParallelWindowEvaluator against naive pack(), and the window auto-scale.
//
// This file runs under Debug, ASan/UBSan and TSan in CI; the fan-out and
// commit-resync paths here are the repo's concurrent packing surface.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "floorplan/annealer.hpp"
#include "floorplan/instances.hpp"
#include "floorplan/model.hpp"
#include "floorplan/pack_engine.hpp"
#include "floorplan/parallel_pack.hpp"
#include "floorplan/sequence_pair.hpp"
#include "graph/throughput.hpp"
#include "proc/cpu.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wp::fplan {
namespace {

::testing::AssertionResult results_identical(const AnnealResult& a,
                                             const AnnealResult& b) {
  if (a.cost != b.cost || a.area != b.area ||
      a.wirelength != b.wirelength || a.throughput != b.throughput ||
      a.accepted_moves != b.accepted_moves ||
      a.evaluations != b.evaluations ||
      a.sequence_pair.positive != b.sequence_pair.positive ||
      a.sequence_pair.negative != b.sequence_pair.negative ||
      a.placement.x != b.placement.x || a.placement.y != b.placement.y) {
    return ::testing::AssertionFailure()
           << "trajectories diverge: cost " << a.cost << " vs " << b.cost
           << ", accepted " << a.accepted_moves << " vs "
           << b.accepted_moves << ", evaluations " << a.evaluations
           << " vs " << b.evaluations;
  }
  return ::testing::AssertionSuccess();
}

TEST(ParallelWindow, TrajectoryMatchesSerialAcrossThreadsAndWindows) {
  const Instance inst = synthetic_instance(24, 9);
  AnnealOptions serial;
  serial.iterations = 2000;
  serial.seed = 31;
  serial.pack_engine = PackEngine::kNaive;
  const AnnealResult reference = anneal(inst, serial);
  serial.pack_engine = PackEngine::kBatched;
  const AnnealResult batched = anneal(inst, serial);
  ASSERT_TRUE(results_identical(reference, batched));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    wp::ThreadPool pool(threads);
    // For a fixed K the speculation accounting is thread-count-invariant
    // (window boundaries depend only on the accept/reject trajectory);
    // remember the K=4 run of each thread count and compare them below.
    for (const std::size_t k : {std::size_t{4}, std::size_t{16},
                                std::size_t{64}}) {
      AnnealOptions par = serial;
      par.pack_engine = PackEngine::kParallel;
      par.eval_pool = &pool;
      par.parallel_window = k;
      const AnnealResult result = anneal(inst, par);
      EXPECT_TRUE(results_identical(reference, result))
          << threads << " threads, K=" << k;
      // Exact accounting: every drawn candidate is either consumed by the
      // serial scan (one per iteration) or wasted past a commit point.
      EXPECT_EQ(result.parallel_drawn - result.parallel_wasted,
                static_cast<std::uint64_t>(result.evaluations))
          << threads << " threads, K=" << k;
      EXPECT_GE(result.parallel_windows,
                static_cast<std::uint64_t>(serial.iterations) / k);
    }
  }

  // Accounting is deterministic in (instance, seed, K) alone: 1-thread
  // and 8-thread runs must report identical speculation stats.
  wp::ThreadPool one(1), eight(8);
  AnnealOptions par = serial;
  par.pack_engine = PackEngine::kParallel;
  par.parallel_window = 16;
  par.eval_pool = &one;
  const AnnealResult narrow = anneal(inst, par);
  par.eval_pool = &eight;
  const AnnealResult wide = anneal(inst, par);
  EXPECT_EQ(narrow.parallel_windows, wide.parallel_windows);
  EXPECT_EQ(narrow.parallel_drawn, wide.parallel_drawn);
  EXPECT_EQ(narrow.parallel_wasted, wide.parallel_wasted);
}

TEST(ParallelWindow, ThroughputDrivenTrajectoryAndOracleStreamMatch) {
  // The stateful throughput oracle (and its memo cache) stays on the
  // serial retirement path: the query stream — and therefore the
  // eval/cache-hit counters — must match the serial engines exactly.
  const Instance inst = cpu_instance();
  const auto graph = wp::proc::make_cpu_graph();
  AnnealOptions serial;
  serial.iterations = 800;
  serial.seed = 23;
  serial.weight_throughput = 200.0;
  serial.delay_model.clock_ps = 300.0;
  serial.throughput_fn = wp::graph::ThroughputEvaluator(graph);
  serial.pack_engine = PackEngine::kNaive;
  const AnnealResult reference = anneal(inst, serial);

  wp::ThreadPool pool(4);
  AnnealOptions par = serial;
  par.throughput_fn = wp::graph::ThroughputEvaluator(graph);
  par.pack_engine = PackEngine::kParallel;
  par.eval_pool = &pool;
  par.parallel_window = 8;
  const AnnealResult result = anneal(inst, par);
  EXPECT_TRUE(results_identical(reference, result));
  EXPECT_EQ(reference.throughput_evals, result.throughput_evals);
  EXPECT_EQ(reference.throughput_cache_hits, result.throughput_cache_hits);
}

TEST(ParallelWindow, WastedSpeculationAccountingIsExact) {
  const Instance inst = synthetic_instance(12, 4);
  wp::ThreadPool pool(2);
  wp::Rng rng(7);
  SequencePair sp = SequencePair::random(inst.blocks.size(), rng);
  ParallelWindowOptions options;
  options.window = 8;
  ParallelWindowEvaluator evaluator(inst, sp, &pool, options);

  // Window 1: six candidates drawn, committed at index 2 → three used
  // (indices 0..2), three wasted.
  {
    const auto& window = evaluator.speculate(sp, rng, 6);
    apply_move(sp, window[2].move);
    evaluator.commit(2);
  }
  EXPECT_EQ(1u, evaluator.stats().windows);
  EXPECT_EQ(6u, evaluator.stats().drawn);
  EXPECT_EQ(3u, evaluator.stats().used);
  EXPECT_EQ(3u, evaluator.stats().wasted);
  EXPECT_EQ(1u, evaluator.stats().commits);

  // Window 2: four drawn, discarded → all four consumed, none wasted.
  evaluator.speculate(sp, rng, 4);
  evaluator.discard();
  EXPECT_EQ(2u, evaluator.stats().windows);
  EXPECT_EQ(10u, evaluator.stats().drawn);
  EXPECT_EQ(7u, evaluator.stats().used);
  EXPECT_EQ(3u, evaluator.stats().wasted);
  EXPECT_EQ(1u, evaluator.stats().commits);

  // Window 3: committed at the last index → nothing wasted.
  {
    const auto& window = evaluator.speculate(sp, rng, 3);
    apply_move(sp, window[2].move);
    evaluator.commit(2);
  }
  EXPECT_EQ(3u, evaluator.stats().windows);
  EXPECT_EQ(13u, evaluator.stats().drawn);
  EXPECT_EQ(10u, evaluator.stats().used);
  EXPECT_EQ(3u, evaluator.stats().wasted);
  EXPECT_EQ(2u, evaluator.stats().commits);
}

TEST(ParallelWindow, RevertCommitChainMatchesNaivePack) {
  const Instance inst = synthetic_instance(18, 6);
  wp::ThreadPool pool(3);
  wp::Rng rng(11);
  SequencePair sp = SequencePair::random(inst.blocks.size(), rng);
  ParallelWindowOptions options;
  options.window = 5;
  ParallelWindowEvaluator evaluator(inst, sp, &pool, options);
  EXPECT_EQ(pack(inst, sp).x, evaluator.placement().x);

  // Drive several windows: every candidate's worker-computed area and
  // wirelength must equal a from-scratch naive evaluation of
  // baseline+move, and after each commit the evaluator's baseline must
  // equal naive pack() of the updated pair — the revert/commit chain
  // never leaks state between candidates or windows.
  for (int round = 0; round < 6; ++round) {
    const std::size_t k = 1 + static_cast<std::size_t>(rng.below(5));
    const auto& window = evaluator.speculate(sp, rng, k);
    for (std::size_t t = 0; t < k; ++t) {
      SequencePair probe = sp;
      apply_move(probe, window[t].move);
      const Placement expected = pack(inst, probe);
      EXPECT_EQ(expected.area(), window[t].area) << "round " << round;
      EXPECT_EQ(total_wirelength(inst, expected), window[t].wirelength)
          << "round " << round;
    }
    if (round % 2 == 0) {
      const std::size_t t = static_cast<std::size_t>(rng.below(k));
      apply_move(sp, window[t].move);
      evaluator.commit(t);
      const Placement expected = pack(inst, sp);
      EXPECT_EQ(expected.x, evaluator.placement().x) << "round " << round;
      EXPECT_EQ(expected.y, evaluator.placement().y) << "round " << round;
    } else {
      evaluator.discard();
    }
  }
}

TEST(ParallelWindow, WindowAutoScalesToPoolWidth) {
  const Instance inst = synthetic_instance(8, 2);
  wp::Rng rng(3);
  const SequencePair sp = SequencePair::random(inst.blocks.size(), rng);
  wp::ThreadPool pool(4);
  ParallelWindowEvaluator evaluator(inst, sp, &pool, {});
  EXPECT_EQ(8u, evaluator.window());  // 2 × pool width
  EXPECT_EQ(4u, evaluator.slots());

  wp::ThreadPool one(1);
  ParallelWindowEvaluator narrow(inst, sp, &one, {});
  EXPECT_EQ(2u, narrow.window());  // floor: speculation needs depth ≥ 2
  EXPECT_EQ(1u, narrow.slots());
}

}  // namespace
}  // namespace wp::fplan
