// Relay-station protocol tests: latency, the two-register skid behaviour,
// stop propagation, and a property test that no token is ever lost or
// reordered under adversarial stall patterns.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <optional>

#include "core/relay_station.hpp"
#include "core/wire.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace wp {
namespace {

/// Drives a chain of n relay stations by hand: a scripted producer that
/// respects stop (holds its token) and a consumer that stalls on demand.
class RsHarness {
 public:
  explicit RsHarness(int num_stations) {
    for (int i = 0; i <= num_stations; ++i)
      wires_.emplace_back("w" + std::to_string(i));
    for (int i = 0; i < num_stations; ++i)
      stations_.push_back(std::make_unique<RelayStation>(
          "rs" + std::to_string(i), &wires_[static_cast<std::size_t>(i)],
          &wires_[static_cast<std::size_t>(i) + 1]));
  }

  /// One cycle: producer offers `offer` (or holds the previously refused
  /// token), consumer stalls if `stall`. Returns the token delivered to the
  /// consumer this cycle (if any).
  std::optional<Word> step(std::optional<Word> offer, bool stall) {
    // eval phase
    for (auto& rs : stations_) rs->eval(cycle_);
    // producer drive: held token takes precedence
    if (!held_ && offer) held_ = offer;
    wires_.front().drive(held_ ? Token::make(*held_) : Token::tau());
    // consumer stop line
    wires_.back().drive_stop(stall);

    // commit phase
    std::optional<Word> delivered;
    if (wires_.back().transferring()) delivered = wires_.back().token().value;
    for (auto& rs : stations_) rs->commit(cycle_);
    if (held_ && !wires_.front().stop()) held_.reset();  // accepted
    ++cycle_;
    return delivered;
  }

  bool producer_blocked() const { return held_.has_value(); }
  RelayStation& station(int i) { return *stations_[static_cast<std::size_t>(i)]; }

 private:
  std::deque<Wire> wires_;
  std::vector<std::unique_ptr<RelayStation>> stations_;
  std::optional<Word> held_;
  Cycle cycle_ = 0;
};

TEST(RelayStation, OneStationOneCycleLatency) {
  RsHarness h(1);
  EXPECT_FALSE(h.step(7, false).has_value());  // enters the station
  auto out = h.step(std::nullopt, false);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, 7u);
}

TEST(RelayStation, ChainLatencyEqualsLengthPlusEntry) {
  // A token spends one cycle entering the chain and one cycle per station:
  // offered at cycle 0, it reaches the consumer at cycle n, i.e. on the
  // (n+1)-th step call.
  for (int n : {1, 2, 3, 5, 8}) {
    RsHarness h(n);
    std::optional<Word> out = h.step(42, false);
    int calls = 1;
    while (!out.has_value() && calls < 20) {
      out = h.step(std::nullopt, false);
      ++calls;
    }
    ASSERT_TRUE(out.has_value()) << "n=" << n;
    EXPECT_EQ(calls, n + 1) << "n=" << n;
    EXPECT_EQ(*out, 42u);
  }
}

TEST(RelayStation, FullThroughputBackToBack) {
  RsHarness h(3);
  int delivered = 0;
  for (Word v = 0; v < 50; ++v) {
    auto out = h.step(v, false);
    if (out) {
      EXPECT_EQ(*out, static_cast<Word>(delivered));
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 50 - 3);  // pipeline fill only
}

TEST(RelayStation, StallBuffersIntoAux) {
  RsHarness h(1);
  h.step(1, true);   // token enters main while consumer stalls
  h.step(2, true);   // second token must land in aux
  EXPECT_EQ(h.station(0).occupancy(), 2);
  // Third token is refused (stop reaches the producer), not lost.
  h.step(3, true);
  EXPECT_EQ(h.station(0).occupancy(), 2);
  EXPECT_TRUE(h.producer_blocked());
  // Release: 1, 2, 3 must come out in order.
  auto a = h.step(std::nullopt, false);
  auto b = h.step(std::nullopt, false);
  auto c = h.step(std::nullopt, false);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(*a, 1u);
  EXPECT_EQ(*b, 2u);
  EXPECT_EQ(*c, 3u);
}

TEST(RelayStation, OccupancyNeverExceedsTwo) {
  Rng rng(99);
  RsHarness h(4);
  Word next = 0;
  for (int cycle = 0; cycle < 2000; ++cycle) {
    const bool stall = rng.chance(0.5);
    std::optional<Word> offer;
    if (rng.chance(0.7)) offer = next;
    auto before = next;
    h.step(offer, stall);
    if (offer && !h.producer_blocked() && next == before) ++next;
    for (int i = 0; i < 4; ++i) {
      ASSERT_LE(h.station(i).occupancy(), 2);
      ASSERT_GE(h.station(i).occupancy(), 0);
    }
  }
}

/// The key property: an adversarially stalled chain delivers exactly the
/// produced sequence, in order, without loss or duplication.
class RelayStationProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RelayStationProperty, LosslessInOrderUnderRandomStalls) {
  const auto [stations, seed] = GetParam();
  Rng rng(seed);
  RsHarness h(stations);
  std::vector<Word> produced, consumed;
  Word next = 100;
  for (int cycle = 0; cycle < 3000; ++cycle) {
    const bool stall = rng.chance(0.4);
    std::optional<Word> offer;
    const bool was_blocked = h.producer_blocked();
    if (rng.chance(0.6)) offer = next;
    auto out = h.step(offer, stall);
    if (offer && !was_blocked) {
      produced.push_back(next);  // the producer committed to this token
      ++next;
    }
    if (out) consumed.push_back(*out);
  }
  // Drain.
  for (int i = 0; i < 4 * stations + 8; ++i) {
    auto out = h.step(std::nullopt, false);
    if (out) consumed.push_back(*out);
  }
  ASSERT_EQ(consumed.size(), produced.size());
  EXPECT_EQ(consumed, produced);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RelayStationProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 6),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

TEST(RelayStation, ResetClearsState) {
  RsHarness h(1);
  h.step(5, true);
  h.step(6, true);
  EXPECT_EQ(h.station(0).occupancy(), 2);
  h.station(0).reset();
  EXPECT_EQ(h.station(0).occupancy(), 0);
  EXPECT_EQ(h.station(0).tokens_forwarded(), 0u);
}

TEST(RelayStation, NullWiresRejected) {
  Wire w;
  EXPECT_THROW(RelayStation("bad", nullptr, &w), ContractViolation);
  EXPECT_THROW(RelayStation("bad", &w, &w), ContractViolation);
}

}  // namespace
}  // namespace wp
