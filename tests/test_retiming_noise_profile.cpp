// Tests for the extension components: Leiserson–Saxe retiming, the
// latency-noise injector (the executable form of latency-insensitivity),
// and the communication profiler.
#include <gtest/gtest.h>

#include "util/assert.hpp"

#include "core/procs.hpp"
#include "core/profile.hpp"
#include "core/stall_injector.hpp"
#include "core/system.hpp"
#include "graph/cycle_ratio.hpp"
#include "gen/topologies.hpp"
#include "graph/retiming.hpp"
#include "proc/blocks.hpp"
#include "proc/experiment.hpp"
#include "util/rng.hpp"

namespace wp {
namespace {

// ----------------------------------------------------------------- Retiming

TEST(Retiming, ClockPeriodOfSimpleChain) {
  graph::Digraph g;
  for (int i = 0; i < 3; ++i) g.add_node("n" + std::to_string(i));
  g.add_edge(0, 1, "", 0);  // 1 register
  g.add_edge(1, 2, "", 0);  // 1 register
  const std::vector<double> d{2, 3, 4};
  // All edges carry one register: period = max single-node delay.
  auto period = graph::clock_period(g, graph::edge_registers(g), d);
  ASSERT_TRUE(period.has_value());
  EXPECT_DOUBLE_EQ(*period, 4.0);
  // Strip the registers: the whole chain is combinational.
  period = graph::clock_period(g, {0, 0}, d);
  ASSERT_TRUE(period.has_value());
  EXPECT_DOUBLE_EQ(*period, 9.0);
}

TEST(Retiming, DetectsRegisterFreeCycle) {
  graph::Digraph g = gen::ring_graph(3, {0});
  EXPECT_FALSE(graph::clock_period(g, {0, 0, 0}, {1, 1, 1}).has_value());
  EXPECT_TRUE(graph::clock_period(g, {1, 0, 0}, {1, 1, 1}).has_value());
}

TEST(Retiming, BalancesARing) {
  // Ring of 4 unit-delay nodes; all 4 registers piled on one edge (tokens 4
  // on edge 0, combinational links elsewhere): original period is 4, a
  // balanced retiming reaches 1.
  graph::Digraph g = gen::ring_graph(4, {0});
  g.edge(0).tokens = 4;
  for (graph::EdgeId e = 1; e < 4; ++e) g.edge(e).tokens = 0;
  const std::vector<double> d{1, 1, 1, 1};

  const auto before = graph::clock_period(g, graph::edge_registers(g), d);
  ASSERT_TRUE(before.has_value());
  EXPECT_DOUBLE_EQ(*before, 4.0);

  const auto result = graph::min_period_retiming(g, d);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.period, 1.0);
  // Register sum around the loop is invariant under retiming.
  int sum = 0;
  for (int r : result.registers) sum += r;
  EXPECT_EQ(sum, 4);
}

TEST(Retiming, RingPeriodIsCeilOfDelayOverRegisters) {
  // Ring of n unit-delay nodes with R registers total: the best period is
  // ceil(n / R).
  for (const auto& [n, registers, expected] :
       {std::tuple{6, 2, 3.0}, {6, 3, 2.0}, {6, 4, 2.0}, {5, 2, 3.0},
        {8, 8, 1.0}}) {
    graph::Digraph g = gen::ring_graph(n, {0});
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) g.edge(e).tokens = 0;
    g.edge(0).tokens = registers;
    const std::vector<double> d(static_cast<std::size_t>(n), 1.0);
    const auto result = graph::min_period_retiming(g, d);
    ASSERT_TRUE(result.feasible) << n << "/" << registers;
    EXPECT_DOUBLE_EQ(result.period, expected) << n << "/" << registers;
  }
}

TEST(Retiming, LoopRegisterSumsAreInvariant) {
  // Retiming must never change any loop's register sum (hence never change
  // a loop's m/(m+n) throughput).
  wp::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    gen::RandomGraphConfig config;
    config.num_nodes = 6;
    config.edge_probability = 0.25;
    config.max_relay_stations = 3;
    graph::Digraph g = gen::random_digraph(config, rng);
    std::vector<double> d;
    for (int i = 0; i < g.num_nodes(); ++i)
      d.push_back(1.0 + static_cast<double>(rng.below(5)));
    const auto result = graph::min_period_retiming(g, d);
    ASSERT_TRUE(result.feasible);
    const std::vector<int> w0 = graph::edge_registers(g);
    for (const auto& cycle : graph::enumerate_cycles(g)) {
      int before = 0, after = 0;
      for (graph::EdgeId e : cycle.edges) {
        before += w0[static_cast<std::size_t>(e)];
        after += result.registers[static_cast<std::size_t>(e)];
      }
      ASSERT_EQ(before, after) << "trial " << trial;
    }
  }
}

TEST(Retiming, MatchesBruteForceOnSmallGraphs) {
  wp::Rng rng(77);
  int checked = 0;
  for (int trial = 0; trial < 12; ++trial) {
    gen::RandomGraphConfig config;
    config.num_nodes = 4;
    config.edge_probability = 0.3;
    config.max_relay_stations = 2;
    graph::Digraph g = gen::random_digraph(config, rng);
    // Sprinkle in combinational links (tokens 0) on the non-ring chords so
    // retiming has registers to move; keep the ring registered so at least
    // one legal weighting exists.
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e)
      if (g.edge(e).label != "ring" && rng.chance(0.5)) g.edge(e).tokens = 0;
    std::vector<double> d;
    for (int i = 0; i < 4; ++i)
      d.push_back(1.0 + static_cast<double>(rng.below(4)));

    // Brute force over retimings r in [-3, 3]^4 (r[0] fixed at 0 WLOG).
    const std::vector<int> w0 = graph::edge_registers(g);
    double best = 1e18;
    int r[4] = {0, 0, 0, 0};
    for (r[1] = -3; r[1] <= 3; ++r[1])
      for (r[2] = -3; r[2] <= 3; ++r[2])
        for (r[3] = -3; r[3] <= 3; ++r[3]) {
          const std::vector<int> labels{r[0], r[1], r[2], r[3]};
          const auto weights = graph::apply_retiming(g, w0, labels);
          bool legal = true;
          for (int wgt : weights) legal = legal && wgt >= 0;
          if (!legal) continue;
          const auto period = graph::clock_period(g, weights, d);
          if (period.has_value()) best = std::min(best, *period);
        }

    if (best >= 1e18) continue;  // no legal weighting in the brute window
    const auto result = graph::min_period_retiming(g, d);
    ASSERT_TRUE(result.feasible) << "trial " << trial;
    EXPECT_NEAR(result.period, best, 1e-9) << "trial " << trial;
    ++checked;
  }
  EXPECT_GE(checked, 6);  // the sweep must actually exercise the solver
}

// ------------------------------------------------------------ StallInjector

TEST(StallInjector, TransparentAtZeroProbabilityUpToOneRs) {
  // p = 0: behaves as exactly one relay station (checked via a ring's
  // throughput dropping from 1 to m/(m+1)).
  SystemSpec spec;
  for (int i = 0; i < 3; ++i)
    spec.add_process("p" + std::to_string(i), [i]() {
      return std::make_unique<IdentityProcess>("p" + std::to_string(i),
                                               static_cast<Word>(i));
    });
  for (int i = 0; i < 3; ++i)
    spec.add_channel("p" + std::to_string(i), "out",
                     "p" + std::to_string((i + 1) % 3), "in");
  NoiseOptions noise;
  noise.stall_probability = 1e-12;  // effectively 0, but injectors spliced
  LidSystem lid = build_lid(spec, ShellOptions{}, false, noise);
  for (int i = 0; i < 3000; ++i) lid.network->step();
  const double th =
      static_cast<double>(lid.shells.at("p0")->stats().firings) / 3000.0;
  EXPECT_NEAR(th, 0.5, 0.01);  // 3 tokens / (3 + 3 injector stages)
}

class NoiseEquivalence
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(NoiseEquivalence, AnyCongestionPreservesBehaviour) {
  const auto [probability, seed] = GetParam();
  SystemSpec spec;
  Rng rng(seed);
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t proc_seed = rng();
    spec.add_process("m" + std::to_string(i), [proc_seed]() {
      Rng r(proc_seed);
      return std::make_unique<RandomMooreProcess>("m", 2, 2, 4, r);
    });
  }
  for (int i = 0; i < 3; ++i) {
    spec.add_channel("m" + std::to_string(i), "out0",
                     "m" + std::to_string((i + 1) % 3), "in0");
    spec.add_channel("m" + std::to_string(i), "out1",
                     "m" + std::to_string((i + 2) % 3), "in1");
  }
  spec.set_all_rs(1);

  GoldenSim golden(spec, true);
  for (int i = 0; i < 250; ++i) golden.step();

  for (const bool oracle : {false, true}) {
    ShellOptions options;
    options.use_oracle = oracle;
    NoiseOptions noise;
    noise.stall_probability = probability;
    noise.seed = seed;
    LidSystem lid = build_lid(spec, options, true, noise);
    for (int i = 0; i < 6000; ++i) lid.network->step();
    const auto eq = check_equivalence(golden.trace(), lid.trace);
    ASSERT_TRUE(eq.equivalent)
        << "p=" << probability << " seed=" << seed << ": " << eq.detail;
    ASSERT_GT(eq.events_checked, 100u) << "system starved";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NoiseEquivalence,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.5, 0.9),
                       ::testing::Values(1u, 2u, 3u)));

TEST(StallInjector, CpuSurvivesCongestion) {
  // The full processor, every channel noisy: results and equivalence hold.
  const proc::ProgramSpec program = proc::extraction_sort_program(8, 3);
  SystemSpec spec = proc::make_cpu_system(program, {});
  GoldenSim golden(spec, true);
  golden.run_until_halt(100000);

  ShellOptions shell;
  shell.use_oracle = true;
  NoiseOptions noise;
  noise.stall_probability = 0.3;
  noise.seed = 9;
  LidSystem lid = build_lid(spec, shell, true, noise);
  lid.run_until_halt(2000000);
  EXPECT_TRUE(lid.shells.at("CU")->halted());
  const auto eq = check_equivalence(golden.trace(), lid.trace);
  EXPECT_TRUE(eq.equivalent) << eq.detail;
  std::string error;
  EXPECT_TRUE(program.verify(
      dynamic_cast<const proc::DcacheBlock&>(lid.shells.at("DC")->process())
          .memory(),
      &error))
      << error;
}

// ---------------------------------------------------------------- Profiler

TEST(Profiler, DutyCycleExcitationRateMeasured) {
  SystemSpec spec;
  spec.add_process("src", []() { return std::make_unique<CounterSource>("s"); });
  spec.add_process("duty", []() {
    return std::make_unique<DutyCycleProcess>("duty", 4);
  });
  spec.add_process("echo", []() {
    return std::make_unique<IdentityProcess>("echo", 0);
  });
  spec.add_channel("src", "out", "duty", "a");
  spec.add_channel("duty", "out", "echo", "in");
  spec.add_channel("echo", "out", "duty", "b");

  // No halting process: profile a fixed window.
  const CommunicationProfile profile = profile_communication(spec, 1000);
  EXPECT_NEAR(profile.at("duty", "a").excitation_rate(), 1.0, 1e-9);
  EXPECT_NEAR(profile.at("duty", "b").excitation_rate(), 0.25, 0.01);
  EXPECT_NEAR(profile.at("echo", "in").excitation_rate(), 1.0, 1e-9);
}

TEST(Profiler, CpuProfileMatchesTable1Intuition) {
  const proc::ProgramSpec program = proc::extraction_sort_program(16, 1);
  const SystemSpec spec = proc::make_cpu_system(program, {});
  const CommunicationProfile profile = profile_communication(spec, 200000);

  // The CU reads the instruction stream nearly always; the RF reads the
  // load return rarely; the DC reads the store data rarely. This ordering
  // is exactly why Table 1 shows +0% on CU-IC and ~+49% on RF-DC.
  const double cu_instr = profile.at("CU", "instr").excitation_rate();
  const double cu_flags = profile.at("CU", "flags").excitation_rate();
  const double rf_load = profile.at("RF", "load").excitation_rate();
  const double rf_ctl = profile.at("RF", "ctl").excitation_rate();
  EXPECT_GT(cu_instr, 0.6);  // sort stalls leave some bubble slots
  EXPECT_LT(cu_flags, 0.3);
  EXPECT_LT(rf_load, 0.3);
  EXPECT_DOUBLE_EQ(rf_ctl, 1.0);
}

TEST(Profiler, Wp2EstimateRanksLoops) {
  const proc::ProgramSpec program = proc::extraction_sort_program(16, 1);
  const SystemSpec spec = proc::make_cpu_system(program, {});
  const CommunicationProfile profile = profile_communication(spec, 200000);

  auto g = proc::make_cpu_graph();
  g.set_relay_stations(g.find_node("RF"), g.find_node("DC"), 1);
  g.set_relay_stations(g.find_node("CU"), g.find_node("IC"), 1);
  g.set_relay_stations(g.find_node("IC"), g.find_node("CU"), 1);
  // Map each connection to the consumer input whose excitation gates it.
  const std::map<std::string, std::string> edge_to_input = {
      {"CU-IC", "CU.instr"}, {"RF-DC", "DC.store_data"},
      {"DC-RF", "RF.load"},  {"ALU-CU", "CU.flags"}};
  const auto estimates = estimate_wp2(g, profile, edge_to_input);
  ASSERT_FALSE(estimates.empty());
  // The worst estimated loop must be the fetch loop (high excitation),
  // not the rarely-excited RF-DC loop.
  EXPECT_NE(estimates.front().loop.find("IC"), std::string::npos);
  for (const auto& est : estimates) {
    if (est.loop.find("DC") != std::string::npos &&
        est.loop.find("RF") != std::string::npos &&
        est.loop.find("CU") == std::string::npos &&
        est.loop.find("ALU") == std::string::npos) {
      EXPECT_GT(est.wp2, 0.9);  // RF<->DC loop: barely excited
    }
  }
}

TEST(Profiler, StrictProcessesReportFullExcitation) {
  SystemSpec spec;
  spec.add_process("a", []() { return std::make_unique<IdentityProcess>("a", 0); });
  spec.add_process("b", []() { return std::make_unique<IdentityProcess>("b", 1); });
  spec.add_channel("a", "out", "b", "in");
  spec.add_channel("b", "out", "a", "in");
  const CommunicationProfile profile = profile_communication(spec, 100);
  for (const auto& input : profile.inputs) {
    EXPECT_EQ(input.firings, 100u);
    EXPECT_DOUBLE_EQ(input.excitation_rate(), 1.0);
  }
}

}  // namespace
}  // namespace wp
