// Shell (wrapper) unit tests: strict WP1 synchronization, τ emission,
// initial tokens, back-pressure, oracle-based WP2 firing, stale-token
// discarding, peeking, unsound-oracle detection and output fan-out.
#include <gtest/gtest.h>

#include "core/network.hpp"
#include "util/assert.hpp"
#include "core/procs.hpp"
#include "core/shell.hpp"
#include "core/system.hpp"

namespace wp {
namespace {

ShellOptions wp1() {
  ShellOptions o;
  o.use_oracle = false;
  return o;
}

ShellOptions wp2() {
  ShellOptions o;
  o.use_oracle = true;
  return o;
}

// A two-input process that records what it saw at each firing.
class RecordingProcess final : public Process {
 public:
  RecordingProcess() : Process("rec") {
    add_input("a");
    add_input("b");
    add_output("out", 0);
  }
  void fire(const Word* in, Word* out) override {
    seen.emplace_back(in[0], in[1]);
    out[0] = in[0] + in[1];
  }
  void reset() override { seen.clear(); }
  std::vector<std::pair<Word, Word>> seen;
};

// An intentionally broken process: its oracle never asks for input b, but
// fire() reads it anyway.
class UnsoundOracleProcess final : public Process {
 public:
  UnsoundOracleProcess() : Process("unsound") {
    add_input("a");
    add_input("b");
    add_output("out", 0);
  }
  InputMask required(const PeekView&) const override { return 0b01; }
  void fire(const Word* in, Word* out) override { out[0] = in[0] + in[1]; }
  void reset() override {}
};

TEST(Shell, StrictWaitsForAllInputs) {
  Network net;
  Wire* wa = net.make_wire("a");
  Wire* wb = net.make_wire("b");
  Wire* wo = net.make_wire("o");
  auto proc = std::make_unique<RecordingProcess>();
  auto* rec = proc.get();
  auto* shell = net.add_node(
      std::make_unique<Shell>("s", std::move(proc), wp1()));
  shell->connect_input(0, wa, 10);  // initial tokens tag 0: (10, 20)
  shell->connect_input(1, wb, 20);
  shell->add_output_wire(0, wo);

  net.step();  // fires tag 0 from the initial tokens
  EXPECT_EQ(shell->stats().firings, 1u);
  ASSERT_EQ(rec->seen.size(), 1u);
  EXPECT_EQ(rec->seen[0], std::make_pair(Word{10}, Word{20}));

  // Only input a gets a tag-1 token: the strict shell must stall.
  wa->drive(Token::make(11));
  net.step();
  wa->drive(Token::tau());
  net.step();
  EXPECT_EQ(shell->stats().firings, 1u);
  EXPECT_GT(shell->stats().stalls_input, 0u);

  // b arrives: fire.
  wb->drive(Token::make(21));
  net.step();
  wb->drive(Token::tau());
  EXPECT_EQ(shell->stats().firings, 2u);
  EXPECT_EQ(rec->seen[1], std::make_pair(Word{11}, Word{21}));
}

TEST(Shell, EmitsTauWhileStalled) {
  Network net;
  Wire* wa = net.make_wire("a");
  Wire* wb = net.make_wire("b");
  Wire* wo = net.make_wire("o");
  auto* shell = net.add_node(std::make_unique<Shell>(
      "s", std::make_unique<RecordingProcess>(), wp1()));
  shell->connect_input(0, wa, 1);
  shell->connect_input(1, wb, 2);
  shell->add_output_wire(0, wo);

  net.step();  // tag-0 firing; result (3) is driven next cycle
  net.step();
  EXPECT_TRUE(wo->token().valid);
  EXPECT_EQ(wo->token().value, 3u);
  net.step();  // no new inputs: stalled, output must be τ
  EXPECT_FALSE(wo->token().valid);
}

TEST(Shell, OutputHeldUnderStopThenDelivered) {
  Network net;
  Wire* wa = net.make_wire("a");
  Wire* wo = net.make_wire("o");
  auto* shell = net.add_node(std::make_unique<Shell>(
      "s", std::make_unique<IdentityProcess>("id"), wp1()));
  shell->connect_input(0, wa, 5);
  shell->add_output_wire(0, wo);

  wo->drive_stop(true);  // consumer stalls (re-driven manually each eval)
  net.step();            // fires tag 0 (output pending)
  EXPECT_EQ(shell->stats().firings, 1u);
  // Pending output + stop: cannot fire tag 1 even though input arrives.
  wa->drive(Token::make(6));
  wo->drive_stop(true);
  net.step();
  wa->drive(Token::tau());
  EXPECT_EQ(shell->stats().firings, 1u);
  EXPECT_GT(shell->stats().stalls_output, 0u);
  EXPECT_EQ(wo->token().value, 5u);  // held token re-driven
  // Release the stop: token 5 delivered, then tag 1 fires with value 6.
  wo->drive_stop(false);
  net.step();
  EXPECT_EQ(shell->stats().firings, 2u);
}

TEST(Shell, BackPressureAssertsStopWhenFifoFull) {
  Network net;
  Wire* wa = net.make_wire("a");
  Wire* wb = net.make_wire("b");
  Wire* wo = net.make_wire("o");
  ShellOptions opts = wp1();
  opts.fifo_capacity = 2;
  auto* shell = net.add_node(std::make_unique<Shell>(
      "s", std::make_unique<RecordingProcess>(), opts));
  shell->connect_input(0, wa, 0);
  shell->connect_input(1, wb, 0);
  shell->add_output_wire(0, wo);

  // Flood input a while b starves: a's FIFO fills to capacity, stop rises.
  for (int i = 1; i <= 6; ++i) {
    wa->drive(Token::make(static_cast<Word>(i)));
    net.step();
    EXPECT_LE(shell->fifo_size(0), 2u);
  }
  EXPECT_TRUE(wa->stop());
}

TEST(Shell, OracleFiresWithoutUnneededInput) {
  Network net;
  Wire* wa = net.make_wire("a");
  Wire* wb = net.make_wire("b");
  Wire* wo = net.make_wire("o");
  // Input b needed only at every 3rd firing (phase 0).
  auto* shell = net.add_node(std::make_unique<Shell>(
      "s", std::make_unique<DutyCycleProcess>("duty", 3), wp2()));
  shell->connect_input(0, wa, 100);
  shell->connect_input(1, wb, 200);
  shell->add_output_wire(0, wo);

  net.step();  // tag 0 fires (both initial tokens present)
  EXPECT_EQ(shell->stats().firings, 1u);
  // Feed only a: tags 1 and 2 need just a, so the shell runs ahead.
  wa->drive(Token::make(101));
  net.step();
  wa->drive(Token::make(102));
  net.step();
  wa->drive(Token::tau());
  EXPECT_EQ(shell->stats().firings, 3u);
  // Tag 3 is a phase-0 firing again: b required, shell must stall.
  wa->drive(Token::make(103));
  net.step();
  wa->drive(Token::tau());
  net.step();
  EXPECT_EQ(shell->stats().firings, 3u);
  // The stale b tokens (tags 1, 2) arrive late and must be discarded; the
  // tag-3 token unblocks the firing.
  for (Word v : {201, 202, 203}) {
    wb->drive(Token::make(v));
    net.step();
  }
  wb->drive(Token::tau());
  EXPECT_EQ(shell->stats().firings, 4u);
  EXPECT_EQ(shell->stats().discarded_tokens, 2u);
}

TEST(Shell, StrictModeNeverDiscards) {
  Network net;
  Wire* wa = net.make_wire("a");
  Wire* wb = net.make_wire("b");
  Wire* wo = net.make_wire("o");
  auto* shell = net.add_node(std::make_unique<Shell>(
      "s", std::make_unique<DutyCycleProcess>("duty", 3), wp1()));
  shell->connect_input(0, wa, 0);
  shell->connect_input(1, wb, 0);
  shell->add_output_wire(0, wo);
  for (int i = 1; i <= 10; ++i) {
    wa->drive(Token::make(static_cast<Word>(i)));
    wb->drive(Token::make(static_cast<Word>(100 + i)));
    net.step();
  }
  EXPECT_EQ(shell->stats().discarded_tokens, 0u);
  EXPECT_EQ(shell->stats().firings, 10u);  // one firing per cycle, tags 0-9
}

TEST(Shell, UnsoundOracleGetsPoisonedInput) {
  Network net;
  Wire* wa = net.make_wire("a");
  Wire* wb = net.make_wire("b");
  Wire* wo = net.make_wire("o");
  auto* shell = net.add_node(std::make_unique<Shell>(
      "s", std::make_unique<UnsoundOracleProcess>(), wp2()));
  shell->connect_input(0, wa, 1);
  shell->connect_input(1, wb, 2);
  shell->add_output_wire(0, wo);
  net.step();  // fires: b available but NOT required -> poisoned
  net.step();
  EXPECT_TRUE(wo->token().valid);
  EXPECT_EQ(wo->token().value, 1u + kPoisonWord);  // the bug is loud
}

TEST(Shell, FanOutWaitsForAllBranches) {
  Network net;
  Wire* wa = net.make_wire("a");
  Wire* w1 = net.make_wire("o1");
  Wire* w2 = net.make_wire("o2");
  auto* shell = net.add_node(std::make_unique<Shell>(
      "s", std::make_unique<IdentityProcess>("id"), wp1()));
  shell->connect_input(0, wa, 7);
  shell->add_output_wire(0, w1);
  shell->add_output_wire(0, w2);

  w2->drive_stop(true);
  net.step();  // fires tag 0
  wa->drive(Token::make(8));
  w2->drive_stop(true);
  net.step();  // w1 delivered, w2 held: no second firing
  wa->drive(Token::tau());
  EXPECT_EQ(shell->stats().firings, 1u);
  w2->drive_stop(true);
  net.step();  // branch w1 now drives τ, w2 still re-drives the held token
  EXPECT_FALSE(w1->token().valid);  // already delivered branch sends τ
  EXPECT_EQ(w2->token().value, 7u);
  w2->drive_stop(false);
  net.step();  // w2 delivered; tag 1 fires
  EXPECT_EQ(shell->stats().firings, 2u);
}

TEST(Shell, FireObserverSeesTagsInOrder) {
  Network net;
  Wire* wa = net.make_wire("a");
  Wire* wo = net.make_wire("o");
  auto* shell = net.add_node(std::make_unique<Shell>(
      "s", std::make_unique<IdentityProcess>("id"), wp1()));
  shell->connect_input(0, wa, 0);
  shell->add_output_wire(0, wo);
  std::vector<Tag> tags;
  shell->set_fire_observer(
      [&tags](Cycle, Tag tag, const Word*) { tags.push_back(tag); });
  for (int i = 1; i <= 5; ++i) {
    wa->drive(Token::make(static_cast<Word>(i)));
    net.step();
  }
  EXPECT_EQ(tags, (std::vector<Tag>{0, 1, 2, 3, 4}));
}

TEST(Shell, RejectsBadConfiguration) {
  auto make = [] {
    return std::make_unique<IdentityProcess>("id");
  };
  EXPECT_THROW(Shell("s", nullptr, wp1()), ContractViolation);
  ShellOptions zero = wp1();
  zero.fifo_capacity = 0;
  EXPECT_THROW(Shell("s", make(), zero), ContractViolation);

  Network net;
  Wire* w = net.make_wire("w");
  Shell s("s", make(), wp1());
  EXPECT_THROW(s.connect_input(5, w, 0), ContractViolation);
  s.connect_input(0, w, 0);
  EXPECT_THROW(s.connect_input(0, w, 0), ContractViolation);  // twice
}

}  // namespace
}  // namespace wp
