// Simulation-oracle suite: golden-cache semantics (once-per-key under
// thread-pool contention, LRU eviction at the size cap, cached-vs-fresh
// golden equality) plus the differential guarantee the refactor rests on —
// oracle-backed run_experiment/wp2_throughput rows are bit-identical to
// the pre-refactor fresh-golden path, reimplemented here verbatim as the
// reference.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "core/procs.hpp"
#include "graph/cycle_ratio.hpp"
#include "proc/blocks.hpp"
#include "proc/experiment.hpp"
#include "sim/netlist_sim.hpp"
#include "sim/oracle.hpp"
#include "util/thread_pool.hpp"

namespace wp::sim {
namespace {

using proc::CpuConfig;
using proc::ExperimentOptions;
using proc::ExperimentRow;
using proc::ProgramSpec;
using proc::RsConfig;

// ------------------------------------------------------------ GoldenCache

GoldenRecord tiny_record(std::uint64_t cycles) {
  GoldenRecord record;
  record.cycles = cycles;
  record.halted = true;
  return record;
}

TEST(GoldenCache, ComputesOncePerKeyAndHitsAfterwards) {
  GoldenCache cache;
  int runs = 0;
  const auto compute = [&] {
    ++runs;
    return tiny_record(7);
  };
  const auto first = cache.get_or_run("k", compute);
  const auto second = cache.get_or_run("k", compute);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(first.get(), second.get());  // the shared record, not a copy
  EXPECT_EQ(second->cycles, 7u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.golden_runs, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(GoldenCache, OnceSemanticsUnderThreadPoolContention) {
  GoldenCache cache;
  std::atomic<int> runs{0};
  ThreadPool pool(4);
  pool.parallel_for(0, 64, [&](std::size_t) {
    const auto record = cache.get_or_run("shared", [&] {
      ++runs;
      return tiny_record(42);
    });
    EXPECT_EQ(record->cycles, 42u);
  });
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(cache.stats().golden_runs, 1u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 64u);
}

TEST(GoldenCache, EvictsLeastRecentlyUsedAtTheCap) {
  GoldenCache cache(/*max_entries=*/2);
  int runs = 0;
  const auto compute_for = [&](std::uint64_t cycles) {
    return [&runs, cycles] {
      ++runs;
      return tiny_record(cycles);
    };
  };
  cache.get_or_run("a", compute_for(1));
  cache.get_or_run("b", compute_for(2));
  cache.get_or_run("a", compute_for(1));  // touch: a is now most recent
  EXPECT_EQ(runs, 2);
  cache.get_or_run("c", compute_for(3));  // evicts b, the LRU entry
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
  // a survived the eviction...
  cache.get_or_run("a", compute_for(1));
  EXPECT_EQ(runs, 3);
  // ...and b did not: asking again recomputes.
  cache.get_or_run("b", compute_for(2));
  EXPECT_EQ(runs, 4);
}

TEST(GoldenCache, ThrowingComputeRetriesOnNextCall) {
  GoldenCache cache;
  int calls = 0;
  EXPECT_THROW(cache.get_or_run("k",
                                [&]() -> GoldenRecord {
                                  ++calls;
                                  throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The failed key is dropped entirely: no dead slot occupies capacity.
  EXPECT_EQ(cache.stats().entries, 0u);
  const auto record = cache.get_or_run("k", [&] {
    ++calls;
    return tiny_record(9);
  });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(record->cycles, 9u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(GoldenCache, ThrowingComputeNeverEvictsHealthyRecords) {
  GoldenCache cache(/*max_entries=*/2);
  int runs = 0;
  cache.get_or_run("good", [&] {
    ++runs;
    return tiny_record(1);
  });
  for (int i = 0; i < 4; ++i) {
    EXPECT_THROW(
        cache.get_or_run("bad" + std::to_string(i),
                         [&]() -> GoldenRecord {
                           throw std::runtime_error("boom");
                         }),
        std::runtime_error);
  }
  // "good" is still cached despite four failing keys passing through.
  cache.get_or_run("good", [&] {
    ++runs;
    return tiny_record(1);
  });
  EXPECT_EQ(runs, 1);
}

// ------------------------------------------- persistent on-disk records

/// Fresh temp dir per test so runs cannot contaminate each other.
std::string persist_dir(const std::string& name) {
  const std::string dir =
      ::testing::TempDir() + "wpgolden-" + name + "-" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::filesystem::remove_all(dir);
  return dir;
}

GoldenRecord traced_record() {
  GoldenRecord record;
  record.cycles = 4242;
  record.halted = true;
  record.result_ok = false;
  record.result_detail = "expected 7, got 8";
  record.trace = {{"CU.iaddr", {1, 2, 3, 0xDEADBEEFULL}},
                  {"DC.load", {}},
                  {"ALU.result", {9, 9, 9}}};
  record.fingerprint = trace_fingerprint(record.trace);
  return record;
}

TEST(GoldenCachePersistence, SaveLoadRoundTripsEveryField) {
  const std::string dir = persist_dir("roundtrip");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/record.wpgolden";
  const GoldenRecord record = traced_record();
  ASSERT_TRUE(save_golden_record(record, "key-1", path));

  const auto loaded = load_golden_record(path, "key-1");
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->cycles, record.cycles);
  EXPECT_EQ(loaded->halted, record.halted);
  EXPECT_EQ(loaded->result_ok, record.result_ok);
  EXPECT_EQ(loaded->result_detail, record.result_detail);
  EXPECT_EQ(loaded->fingerprint, record.fingerprint);
  EXPECT_EQ(loaded->trace, record.trace);

  // A foreign key must not alias the record.
  EXPECT_EQ(load_golden_record(path, "key-2"), nullptr);
  EXPECT_EQ(load_golden_record(dir + "/missing.wpgolden", "key-1"), nullptr);
}

TEST(GoldenCachePersistence, SecondCacheReplaysStoredRecordWithoutARun) {
  const std::string dir = persist_dir("replay");
  int runs = 0;
  const auto compute = [&] {
    ++runs;
    return traced_record();
  };

  GoldenCache writer;
  writer.set_persist_dir(dir);
  const auto first = writer.get_or_run("shared-key", compute);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(writer.stats().disk_stores, 1u);
  EXPECT_EQ(writer.stats().disk_hits, 0u);

  // A different cache (a later process) replays the stored golden.
  GoldenCache reader;
  reader.set_persist_dir(dir);
  const auto replayed = reader.get_or_run("shared-key", compute);
  EXPECT_EQ(runs, 1) << "stored record should have replaced the run";
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  EXPECT_EQ(reader.stats().golden_runs, 0u);
  EXPECT_EQ(replayed->cycles, first->cycles);
  EXPECT_EQ(replayed->trace, first->trace);
  EXPECT_EQ(replayed->fingerprint, first->fingerprint);
}

TEST(GoldenCachePersistence, CorruptFilesAreRecomputedAndOverwritten) {
  const std::string dir = persist_dir("corrupt");
  int runs = 0;
  const auto compute = [&] {
    ++runs;
    return traced_record();
  };

  GoldenCache writer;
  writer.set_persist_dir(dir);
  writer.get_or_run("k", compute);
  ASSERT_EQ(runs, 1);
  const std::string path = writer.persist_path("k");
  ASSERT_FALSE(path.empty());

  // Corruption 1: flip a payload byte — checksum must reject it.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(12);
    file.put('\x5a');
  }
  EXPECT_EQ(load_golden_record(path, "k"), nullptr);
  GoldenCache after_flip;
  after_flip.set_persist_dir(dir);
  after_flip.get_or_run("k", compute);
  EXPECT_EQ(runs, 2) << "corrupt record must be recomputed";
  EXPECT_EQ(after_flip.stats().disk_stores, 1u)
      << "recompute should overwrite the corrupt file";

  // The overwrite healed the file: the next cache replays it again.
  GoldenCache reader;
  reader.set_persist_dir(dir);
  reader.get_or_run("k", compute);
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(reader.stats().disk_hits, 1u);

  // Corruption 2: truncation (including into the header).
  std::filesystem::resize_file(path, 10);
  EXPECT_EQ(load_golden_record(path, "k"), nullptr);
  // Corruption 3: garbage that is not even a header.
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file << "not a golden record";
  }
  EXPECT_EQ(load_golden_record(path, "k"), nullptr);
}

TEST(GoldenCachePersistence, EvictedRecordsReloadFromDiskInsteadOfRerunning) {
  const std::string dir = persist_dir("evict");
  int runs = 0;
  GoldenCache cache(/*max_entries=*/1);
  cache.set_persist_dir(dir);
  const auto compute = [&] {
    ++runs;
    return traced_record();
  };
  cache.get_or_run("a", compute);
  cache.get_or_run("b", compute);  // evicts "a" from memory, not from disk
  EXPECT_EQ(runs, 2);
  cache.get_or_run("a", compute);
  EXPECT_EQ(runs, 2) << "the evicted record should replay from disk";
  EXPECT_EQ(cache.stats().disk_hits, 1u);
}

// ------------------------------------------------- cached vs fresh golden

TEST(SimOracle, CachedGoldenEqualsFreshRun) {
  const ProgramSpec program = proc::extraction_sort_program(8, 5);
  const CpuConfig cpu;
  SimOracle oracle;
  const auto cached = oracle.golden(program, cpu, 2000000);

  wp::GoldenSim fresh(proc::make_cpu_system(program, cpu), true);
  const std::uint64_t fresh_cycles = fresh.run_until_halt(2000000);

  EXPECT_EQ(cached->cycles, fresh_cycles);
  EXPECT_TRUE(cached->halted);
  EXPECT_TRUE(cached->result_ok) << cached->result_detail;
  EXPECT_EQ(cached->trace, fresh.trace());
  EXPECT_EQ(cached->fingerprint, trace_fingerprint(fresh.trace()));
  EXPECT_NE(cached->fingerprint, 0u);

  // An identical but separately constructed ProgramSpec shares the record.
  const auto again =
      oracle.golden(proc::extraction_sort_program(8, 5), cpu, 2000000);
  EXPECT_EQ(again.get(), cached.get());
  EXPECT_EQ(oracle.stats().golden_runs, 1u);

  // A different CPU fashion is a different key.
  CpuConfig multicycle;
  multicycle.multicycle = true;
  const auto other = oracle.golden(program, multicycle, 2000000);
  EXPECT_NE(other->cycles, cached->cycles);
  EXPECT_EQ(oracle.stats().golden_runs, 2u);
}

// ------------------------------------------- pre-refactor differential

/// The pre-oracle run_experiment, kept verbatim as the reference the
/// refactor must stay bit-identical to: golden re-simulated inline for
/// every evaluation.
ExperimentRow reference_run_experiment(const ProgramSpec& program,
                                       const CpuConfig& cpu,
                                       const RsConfig& config,
                                       const ExperimentOptions& options) {
  const auto dcache_of = [](const wp::Process& p) -> const proc::DcacheBlock& {
    const auto* dc = dynamic_cast<const proc::DcacheBlock*>(&p);
    EXPECT_NE(dc, nullptr);
    return *dc;
  };
  ExperimentRow row;
  row.label = config.label;
  auto note = [&row](const std::string& msg) {
    if (row.detail.empty()) row.detail = msg;
  };

  wp::SystemSpec spec = proc::make_cpu_system(program, cpu);
  wp::GoldenSim golden(spec, options.check_equivalence);
  row.golden_cycles = golden.run_until_halt(options.max_cycles);
  EXPECT_TRUE(golden.halted());
  if (options.verify_result) {
    std::string error;
    if (!program.verify(dcache_of(golden.process("DC")).memory(), &error)) {
      row.result_ok = false;
      note("golden result check failed: " + error);
    }
  }

  spec.set_rs_map(config.rs);
  for (const bool oracle : {false, true}) {
    wp::ShellOptions shell;
    shell.use_oracle = oracle;
    shell.fifo_capacity = options.fifo_capacity;
    wp::LidSystem lid = build_lid(spec, shell, options.check_equivalence);
    const std::uint64_t cycles = lid.run_until_halt(options.max_cycles);
    if (!lid.shells.at("CU")->halted()) {
      note(std::string(oracle ? "WP2" : "WP1") +
           " run did not halt within max_cycles");
    }
    if (options.check_equivalence) {
      const auto eq = check_equivalence(golden.trace(), lid.trace);
      if (!eq.equivalent) {
        if (oracle)
          row.wp2_equivalent = false;
        else
          row.wp1_equivalent = false;
        note(std::string(oracle ? "WP2" : "WP1") +
             " not equivalent to golden: " + eq.detail);
      }
    }
    if (options.verify_result) {
      std::string error;
      if (!program.verify(dcache_of(lid.shells.at("DC")->process()).memory(),
                          &error)) {
        row.result_ok = false;
        note(std::string(oracle ? "WP2" : "WP1") +
             " result check failed: " + error);
      }
    }
    (oracle ? row.wp2_cycles : row.wp1_cycles) = cycles;
  }

  row.th_wp1 = static_cast<double>(row.golden_cycles) /
               static_cast<double>(row.wp1_cycles);
  row.th_wp2 = static_cast<double>(row.golden_cycles) /
               static_cast<double>(row.wp2_cycles);
  row.improvement = (row.th_wp2 - row.th_wp1) / row.th_wp1;
  wp::graph::Digraph g = proc::make_cpu_graph();
  for (wp::graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    auto it = config.rs.find(g.edge(e).label);
    if (it != config.rs.end()) g.edge(e).relay_stations = it->second;
  }
  row.static_wp1 = wp::graph::min_cycle_ratio_lawler(g).ratio;
  return row;
}

void expect_rows_identical(const ExperimentRow& a, const ExperimentRow& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.golden_cycles, b.golden_cycles);
  EXPECT_EQ(a.wp1_cycles, b.wp1_cycles);
  EXPECT_EQ(a.wp2_cycles, b.wp2_cycles);
  EXPECT_EQ(a.th_wp1, b.th_wp1);  // exact: same integers divided
  EXPECT_EQ(a.th_wp2, b.th_wp2);
  EXPECT_EQ(a.improvement, b.improvement);
  EXPECT_EQ(a.static_wp1, b.static_wp1);
  EXPECT_EQ(a.wp1_equivalent, b.wp1_equivalent);
  EXPECT_EQ(a.wp2_equivalent, b.wp2_equivalent);
  EXPECT_EQ(a.result_ok, b.result_ok);
  EXPECT_EQ(a.detail, b.detail);
}

class OracleDifferential : public ::testing::TestWithParam<bool> {};

TEST_P(OracleDifferential, RunExperimentMatchesPreRefactorReference) {
  const bool use_matmul = GetParam();
  const ProgramSpec program = use_matmul ? proc::matmul_program(3, 5)
                                         : proc::extraction_sort_program(8, 5);
  const CpuConfig cpu;
  const std::vector<RsConfig> configs = {
      {"ideal", {}},
      {"Only CU-IC", {{"CU-IC", 1}}},
      {"mixed", {{"CU-IC", 1}, {"RF-DC", 2}, {"ALU-RF", 1}}},
  };
  SimOracle oracle;  // private oracle: isolates the replay count below
  for (const bool check_equivalence : {true, false}) {
    ExperimentOptions options;
    options.check_equivalence = check_equivalence;
    for (const auto& config : configs) {
      const ExperimentRow fresh =
          reference_run_experiment(program, cpu, config, options);
      const ExperimentRow cached =
          oracle.run_experiment(program, cpu, config, options);
      expect_rows_identical(fresh, cached);
    }
  }
  // Six evaluations, one (program, cpu, horizon) key: the golden ran once
  // where the reference path re-simulated it six times.
  EXPECT_EQ(oracle.stats().golden_runs, 1u);
}

INSTANTIATE_TEST_SUITE_P(Programs, OracleDifferential, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "matmul" : "sort";
                         });

TEST(SimOracle, Wp2ThroughputMatchesExperimentRow) {
  const ProgramSpec program = proc::extraction_sort_program(8, 3);
  const std::map<std::string, int> rs = {{"RF-DC", 1}};
  SimOracle oracle;
  const double th = oracle.wp2_throughput(program, {}, rs);
  ExperimentOptions options;
  options.check_equivalence = false;
  const ExperimentRow row =
      oracle.run_experiment(program, {}, {"row", rs}, options);
  // wp2_throughput halts without the grace period, so cycles may differ by
  // the drain; both must express the same golden though.
  EXPECT_NEAR(th, row.th_wp2, 0.05);
  EXPECT_EQ(oracle.stats().golden_runs, 1u);  // shared across both calls
}

// ------------------------------------------ pooled ≡ sequential, one cache

TEST(SimOracle, PooledSweepMatchesSequentialWithSharedCache) {
  const ProgramSpec program = proc::extraction_sort_program(8, 3);
  ExperimentOptions options;
  options.check_equivalence = false;
  std::vector<RsConfig> configs;
  for (int n = 0; n <= 3; ++n)
    configs.push_back({"RF-ALU x" + std::to_string(n), {{"RF-ALU", n}}});

  SimOracle sequential_oracle;
  std::vector<ExperimentRow> sequential;
  for (const auto& config : configs)
    sequential.push_back(
        sequential_oracle.run_experiment(program, {}, config, options));

  SimOracle pooled_oracle;
  proc::ParallelSweep sweep(program, {}, options);
  sweep.set_oracle(&pooled_oracle);
  ThreadPool pool(4);
  const std::vector<ExperimentRow> pooled = sweep.run(configs, &pool);

  ASSERT_EQ(pooled.size(), sequential.size());
  for (std::size_t i = 0; i < pooled.size(); ++i)
    expect_rows_identical(sequential[i], pooled[i]);
  // Per-key once-semantics: four workers racing for one program key still
  // run the golden exactly once.
  EXPECT_EQ(pooled_oracle.stats().golden_runs, 1u);
  EXPECT_EQ(sequential_oracle.stats().golden_runs, 1u);
}

// --------------------------------------------------- netlist simulation

const char kTinyNetlist[] =
    "system tiny\n"
    "process a randommoore inputs=1 outputs=1 states=4 seed=7\n"
    "process b randommoore inputs=1 outputs=1 states=4 seed=9\n"
    "channel a.out0 -> b.in0 connection=ab\n"
    "channel b.out0 -> a.in0 connection=ba\n";

TEST(NetlistSim, EquivalentAndNoSlowerThanWp1) {
  NetlistSimOptions options;
  options.golden_cycles = 128;
  options.wp_cycles = 512;
  const std::map<std::string, int> rs = {{"ab", 1}, {"ba", 2}};
  const NetlistSimResult result = simulate_netlist(kTinyNetlist, rs, options);
  EXPECT_TRUE(result.wp1_equivalent) << result.detail;
  EXPECT_TRUE(result.wp2_equivalent) << result.detail;
  EXPECT_GT(result.wp1_firings, 0u);
  // Two processes, three registers around the loop (1 + 2 RS each way
  // +... ): throughput strictly below 1, above 0.
  EXPECT_GT(result.th_wp1, 0.0);
  EXPECT_LT(result.th_wp1, 1.0);
  EXPECT_GE(result.th_wp2 + 1e-9, result.th_wp1);
  EXPECT_NE(result.golden_fingerprint, 0u);
}

TEST(NetlistSim, CachedGoldenSharedAcrossRsConfigurations) {
  NetlistSimOptions options;
  options.golden_cycles = 128;
  options.wp_cycles = 512;
  GoldenCache cache;
  const NetlistSimResult deep = simulate_netlist(
      kTinyNetlist, {{"ab", 2}, {"ba", 2}}, options, &cache);
  const NetlistSimResult shallow =
      simulate_netlist(kTinyNetlist, {{"ab", 1}}, options, &cache);
  EXPECT_EQ(cache.stats().golden_runs, 1u);  // rs is not part of the key
  EXPECT_EQ(deep.golden_fingerprint, shallow.golden_fingerprint);
  // Deeper pipelining never raises throughput.
  EXPECT_LE(deep.th_wp1, shallow.th_wp1 + 1e-9);

  // Cached and fresh (cache-less) evaluations agree bit-for-bit.
  const NetlistSimResult fresh =
      simulate_netlist(kTinyNetlist, {{"ab", 1}}, options, nullptr);
  EXPECT_EQ(fresh.th_wp1, shallow.th_wp1);
  EXPECT_EQ(fresh.th_wp2, shallow.th_wp2);
  EXPECT_EQ(fresh.golden_fingerprint, shallow.golden_fingerprint);
}

TEST(NetlistSim, ZeroRsRunsAtFullThroughput) {
  NetlistSimOptions options;
  options.golden_cycles = 64;
  options.wp_cycles = 256;
  const NetlistSimResult result = simulate_netlist(kTinyNetlist, {}, options);
  EXPECT_DOUBLE_EQ(result.th_wp1, 1.0);
  EXPECT_DOUBLE_EQ(result.th_wp2, 1.0);
  EXPECT_TRUE(result.wp1_equivalent && result.wp2_equivalent);
}

}  // namespace
}  // namespace wp::sim
