// Tests of the DSP stream case study: fixed-point arithmetic, FIR impulse
// response, AGC convergence and cadence, and the full pipeline's WP1/WP2
// behaviour with relay stations on the feedback link.
#include <gtest/gtest.h>

#include "util/assert.hpp"

#include "core/profile.hpp"
#include "core/system.hpp"
#include "stream/stream.hpp"

namespace wp::stream {
namespace {

TEST(FixedPoint, RoundTripAndMultiply) {
  EXPECT_NEAR(fix_to_double(fix_from_double(0.5)), 0.5, 1e-4);
  EXPECT_NEAR(fix_to_double(fix_from_double(-1.25)), -1.25, 1e-4);
  const Word half = fix_from_double(0.5);
  const Word three = fix_from_double(3.0);
  EXPECT_NEAR(fix_to_double(fix_mul(half, three)), 1.5, 1e-3);
  const Word neg = fix_from_double(-2.0);
  EXPECT_NEAR(fix_to_double(fix_mul(neg, half)), -1.0, 1e-3);
}

TEST(Fir, ImpulseResponseEqualsTaps) {
  FirFilter fir("f", {fix_from_double(0.25), fix_from_double(0.5),
                      fix_from_double(0.25)});
  Word in[1], out[1];
  std::vector<double> response;
  in[0] = fix_from_double(1.0);
  fir.fire(in, out);
  response.push_back(fix_to_double(out[0]));
  in[0] = 0;
  for (int i = 0; i < 4; ++i) {
    fir.fire(in, out);
    response.push_back(fix_to_double(out[0]));
  }
  EXPECT_NEAR(response[0], 0.25, 1e-3);
  EXPECT_NEAR(response[1], 0.5, 1e-3);
  EXPECT_NEAR(response[2], 0.25, 1e-3);
  EXPECT_NEAR(response[3], 0.0, 1e-3);
}

TEST(Agc, EmitsFreshGainEveryPeriod) {
  AgcControl agc("a", 4, 0.25);
  Word in[1] = {fix_from_double(0.5)};
  Word out[1];
  for (int j = 0; j < 12; ++j) {
    agc.fire(in, out);
    EXPECT_EQ(AgcControl::fresh(out[0]), (j + 1) % 4 == 0) << j;
  }
}

TEST(Agc, SteersTowardTarget) {
  // Constant magnitude 0.8, target 0.2: gain must shrink toward 0.25.
  AgcControl agc("a", 8, 0.2);
  GainStage gain("g", 8);
  Word in[2], out[1];
  Word gain_token = static_cast<Word>(kFixOne);
  double last_gain = 1.0;
  for (int round = 0; round < 6; ++round) {
    for (int j = 0; j < 8; ++j) {
      in[0] = fix_from_double(0.8 * last_gain);
      agc.fire(in, out);
      gain_token = out[0];
    }
    ASSERT_TRUE(AgcControl::fresh(gain_token));
    last_gain = fix_to_double(gain_token & ~(Word{1} << 63));
  }
  EXPECT_NEAR(0.8 * last_gain, 0.2, 0.05);
  (void)gain;
}

TEST(StreamSystem, GoldenPipelineProducesBoundedOutput) {
  StreamConfig config;
  config.samples = 3000;
  SystemSpec spec = make_stream_system(config);
  GoldenSim golden(spec, false);
  golden.run_until_halt(100000);
  EXPECT_TRUE(golden.halted());
}

class StreamFeedbackRs : public ::testing::TestWithParam<int> {};

TEST_P(StreamFeedbackRs, Wp1HitsLoopBoundWp2RecoversToNearOne) {
  const int n = GetParam();
  StreamConfig config;
  config.samples = 3000;
  config.agc_period = 16;
  SystemSpec spec = make_stream_system(config);
  spec.set_connection_rs("AGC-GAIN", n);

  GoldenSim golden(spec, true);
  const std::uint64_t golden_cycles = golden.run_until_halt(100000);

  for (const bool oracle : {false, true}) {
    ShellOptions shell;
    shell.use_oracle = oracle;
    LidSystem lid = build_lid(spec, shell, true);
    const std::uint64_t cycles = lid.run_until_halt(1000000);
    ASSERT_TRUE(lid.shells.at("SNK")->halted());
    const double th = static_cast<double>(golden_cycles) /
                      static_cast<double>(cycles);

    const auto eq = check_equivalence(golden.trace(), lid.trace);
    ASSERT_TRUE(eq.equivalent) << eq.detail;

    // Loop GAIN -> QNT -> AGC -> GAIN has m = 3.
    const double wp1_bound = 3.0 / (3.0 + n);
    if (!oracle) {
      EXPECT_NEAR(th, wp1_bound, 0.02) << "n=" << n;
    } else {
      // WP2 pays the extra loop latency only on the one-in-period firings
      // that actually read the feedback: Th = period / (period + n). The
      // fresh gain depends on the full sample window, so it cannot arrive
      // any earlier — the relaxation amortizes, not removes, the latency.
      const double wp2_bound = 16.0 / (16.0 + n);
      EXPECT_NEAR(th, wp2_bound, 0.02) << "n=" << n;
      EXPECT_GE(th, wp1_bound - 0.02) << "n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FeedbackDepth, StreamFeedbackRs,
                         ::testing::Values(0, 1, 2, 4, 8));

TEST(StreamSystem, SinkSamplesIdenticalAcrossExecutions) {
  StreamConfig config;
  config.samples = 1500;
  SystemSpec spec = make_stream_system(config);
  spec.set_connection_rs("AGC-GAIN", 3);
  spec.set_connection_rs("FIR-GAIN", 1);

  GoldenSim golden(spec, false);
  golden.run_until_halt(100000);
  const auto& golden_sink =
      dynamic_cast<const StreamSink&>(golden.process("SNK"));

  for (const bool oracle : {false, true}) {
    ShellOptions shell;
    shell.use_oracle = oracle;
    LidSystem lid = build_lid(spec, shell, false);
    lid.run_until_halt(1000000);
    const auto& sink =
        dynamic_cast<const StreamSink&>(lid.shells.at("SNK")->process());
    ASSERT_GE(sink.samples().size(), golden_sink.samples().size());
    for (std::size_t i = 0; i < golden_sink.samples().size(); ++i)
      ASSERT_EQ(sink.samples()[i], golden_sink.samples()[i])
          << (oracle ? "WP2" : "WP1") << " sample " << i;
  }
}

TEST(StreamSystem, ProfilerSeesTheFeedbackDutyCycle) {
  StreamConfig config;
  config.samples = 2000;
  config.agc_period = 16;
  const SystemSpec spec = make_stream_system(config);
  const CommunicationProfile profile = profile_communication(spec, 100000);
  EXPECT_NEAR(profile.at("GAIN", "gain").excitation_rate(), 1.0 / 16, 0.01);
  EXPECT_DOUBLE_EQ(profile.at("GAIN", "sample").excitation_rate(), 1.0);
  EXPECT_DOUBLE_EQ(profile.at("AGC", "mag").excitation_rate(), 1.0);
}

TEST(StreamSystem, NoiseDoesNotChangeTheStream) {
  StreamConfig config;
  config.samples = 1000;
  SystemSpec spec = make_stream_system(config);
  GoldenSim golden(spec, true);
  golden.run_until_halt(100000);

  ShellOptions shell;
  shell.use_oracle = true;
  NoiseOptions noise;
  noise.stall_probability = 0.25;
  noise.seed = 5;
  LidSystem lid = build_lid(spec, shell, true, noise);
  lid.run_until_halt(2000000);
  const auto eq = check_equivalence(golden.trace(), lid.trace);
  EXPECT_TRUE(eq.equivalent) << eq.detail;
}

}  // namespace
}  // namespace wp::stream
