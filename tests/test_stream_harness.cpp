// The streaming front end's differential + hardening suite:
//
//   * golden ≡ WP1 ≡ WP2 bit-for-bit (per-sink digests) across AGC
//     periods × feedback relay-station depths × graph shapes;
//   * stats-only sinks are observationally identical to keep-all sinks
//     (count, digest, Welford stats, tail window) at O(1) memory;
//   * the latent stream bugs stay fixed: gain/AGC cadence mismatch fails
//     at spec-build time, fix_from_double rejects NaN/out-of-range, the
//     shell's ring FIFO wraps and overflows loudly, and a harness that
//     exhausts its cycle budget throws instead of reporting a truncated
//     throughput;
//   * the remote path: StreamJob/StreamResult wire round trips, a live
//     EvalServer returns byte-identical StreamResults to in-process
//     evaluation (also sharded over two servers), and the daemon stats
//     scrape exposes the stream/* metrics the harness flushes.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "core/token_ring.hpp"
#include "eval/evaluate.hpp"
#include "eval/request.hpp"
#include "obs/metrics.hpp"
#include "stream/harness.hpp"
#include "stream/stream.hpp"
#include "svc/eval_client.hpp"
#include "svc/eval_server.hpp"
#include "util/assert.hpp"
#include "util/wire.hpp"

#include <unistd.h>

namespace wp::stream {
namespace {

// ----------------------------------------------------------- TokenRing

TEST(TokenRing, WrapsAroundWithoutLosingOrder) {
  TokenRing ring;
  ring.set_capacity(3);
  EXPECT_TRUE(ring.empty());
  for (Word w = 0; w < 2; ++w) ring.push_back(TaggedToken{w, w});
  ring.pop_front();
  // head_ is now 1; push two more so the buffer wraps.
  ring.push_back(TaggedToken{2, 2});
  ring.push_back(TaggedToken{3, 3});
  EXPECT_TRUE(ring.full());
  for (Word expected = 1; expected <= 3; ++expected) {
    EXPECT_EQ(ring.front().value, expected);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(TokenRing, OverflowAndEmptyFrontFailLoudly) {
  TokenRing ring;
  ring.set_capacity(1);
  EXPECT_THROW(ring.front(), ContractViolation);
  ring.push_back(TaggedToken{1, 0});
  EXPECT_THROW(ring.push_back(TaggedToken{2, 1}), ContractViolation);
}

// ------------------------------------------------- fix_from_double guard

TEST(FixFromDouble, RejectsNonFiniteAndOutOfRange) {
  EXPECT_THROW(fix_from_double(std::nan("")), ContractViolation);
  EXPECT_THROW(fix_from_double(std::numeric_limits<double>::infinity()),
               ContractViolation);
  EXPECT_THROW(fix_from_double(32768.0), ContractViolation);
  EXPECT_THROW(fix_from_double(-32769.0), ContractViolation);
  EXPECT_NEAR(fix_to_double(fix_from_double(32767.5)), 32767.5, 1e-4);
  EXPECT_NEAR(fix_to_double(fix_from_double(-32768.0)), -32768.0, 1e-4);
}

// ------------------------------------------------- cadence validation

TEST(StreamValidation, MismatchedCadenceFailsAtBuildTime) {
  StreamConfig config;
  config.agc_period = 16;
  config.gain_period = 8;  // the crash that used to happen mid-simulation
  EXPECT_THROW(make_stream_system(config), ContractViolation);
  EXPECT_THROW(validate_stream_config(config), ContractViolation);

  config.gain_period = 16;  // explicit and matching: fine
  EXPECT_NO_THROW(make_stream_system(config));
  config.gain_period = 0;  // 0 = follow agc_period: fine
  EXPECT_NO_THROW(make_stream_system(config));
}

TEST(StreamValidation, RejectsDegenerateConfigs) {
  {
    StreamConfig config;
    config.agc_period = 0;
    EXPECT_THROW(validate_stream_config(config), ContractViolation);
  }
  {
    StreamConfig config;
    config.fir.clear();
    EXPECT_THROW(validate_stream_config(config), ContractViolation);
  }
  {
    StreamConfig config;
    config.agc_target = std::nan("");
    EXPECT_THROW(validate_stream_config(config), ContractViolation);
  }
  {
    StreamGraphConfig graph;
    graph.tokens = 0;
    EXPECT_THROW(validate_graph_config(graph), ContractViolation);
  }
  {
    StreamGraphConfig graph;
    graph.branches = 0;
    EXPECT_THROW(validate_graph_config(graph), ContractViolation);
  }
  {
    StreamGraphConfig graph;
    graph.agc_period = 4;
    graph.gain_period = 16;
    EXPECT_THROW(make_stream_graph(graph), ContractViolation);
  }
}

// ------------------------------------------------------ sink retention

TEST(StreamSink, StatsOnlyIsObservationallyIdenticalToKeepAll) {
  StreamConfig config;
  config.samples = 600;
  config.agc_period = 8;

  config.sink.keep_samples = true;
  const SystemSpec keep_spec = make_stream_system(config);
  GoldenSim keep_run(keep_spec, false);
  keep_run.run_until_halt(10000);
  const auto& keep =
      dynamic_cast<const StreamSink&>(keep_run.process("SNK"));

  config.sink.keep_samples = false;
  config.sink.tail_window = 32;
  const SystemSpec stats_spec = make_stream_system(config);
  GoldenSim stats_run(stats_spec, false);
  stats_run.run_until_halt(10000);
  const auto& stats =
      dynamic_cast<const StreamSink&>(stats_run.process("SNK"));

  EXPECT_EQ(keep.count(), stats.count());
  EXPECT_EQ(keep.digest(), stats.digest());
  EXPECT_DOUBLE_EQ(keep.value_stats().mean(), stats.value_stats().mean());
  EXPECT_DOUBLE_EQ(keep.value_stats().stddev(), stats.value_stats().stddev());

  // The tail window is the keep-all suffix, oldest first.
  const std::vector<Word> tail = stats.tail();
  ASSERT_EQ(tail.size(), 32u);
  const std::vector<Word>& all = keep.samples();
  ASSERT_GE(all.size(), tail.size());
  for (std::size_t i = 0; i < tail.size(); ++i)
    EXPECT_EQ(tail[i], all[all.size() - tail.size() + i]) << i;

  // Stats-only mode refuses samples() instead of returning garbage.
  EXPECT_THROW(stats.samples(), ContractViolation);
}

TEST(StreamSink, ShortRunTailIsWholeStream) {
  SinkOptions options;
  options.keep_samples = false;
  options.tail_window = 16;
  StreamSink sink("s", 0, options);
  for (Word w = 1; w <= 5; ++w) {
    Word in[1] = {w};
    sink.fire(in, nullptr);  // the sink has no output ports
  }
  const std::vector<Word> tail = sink.tail();
  ASSERT_EQ(tail.size(), 5u);
  for (Word w = 1; w <= 5; ++w) EXPECT_EQ(tail[w - 1], w);
}

// ------------------------------------------------- differential suite

StreamGraphConfig small_graph(std::uint64_t tokens, std::size_t fir_stages,
                              std::size_t branches, std::uint64_t period,
                              int feedback_rs, int forward_rs) {
  StreamGraphConfig config;
  config.tokens = tokens;
  config.fir_stages = fir_stages;
  config.branches = branches;
  config.agc_period = period;
  config.feedback_rs = feedback_rs;
  config.forward_rs = forward_rs;
  config.sink.keep_samples = false;
  return config;
}

TEST(Harness, GoldenWp1Wp2BitIdenticalAcrossShapesAndDepths) {
  for (const std::uint64_t period : {4u, 16u}) {
    for (const int feedback_rs : {0, 2, 5}) {
      for (const auto& [fir_stages, branches, forward_rs] :
           {std::tuple<std::size_t, std::size_t, int>{1, 1, 0},
            std::tuple<std::size_t, std::size_t, int>{3, 2, 1}}) {
        const StreamGraphConfig config = small_graph(
            1500, fir_stages, branches, period, feedback_rs, forward_rs);
        const std::string what =
            "K=" + std::to_string(period) + " n=" +
            std::to_string(feedback_rs) + " fir=" +
            std::to_string(fir_stages) + " br=" + std::to_string(branches);

        HarnessOptions options;
        options.record_metrics = false;
        options.mode = RunMode::kGolden;
        const HarnessResult golden = run_stream_graph(config, options);
        options.mode = RunMode::kWp1;
        const HarnessResult wp1 = run_stream_graph(config, options);
        options.mode = RunMode::kWp2;
        const HarnessResult wp2 = run_stream_graph(config, options);

        ASSERT_EQ(golden.sink_digests.size(), branches) << what;
        EXPECT_EQ(golden.digest, wp1.digest) << what;
        EXPECT_EQ(golden.digest, wp2.digest) << what;
        EXPECT_EQ(golden.sink_digests, wp1.sink_digests) << what;
        EXPECT_EQ(golden.sink_digests, wp2.sink_digests) << what;
        for (const std::uint64_t count : wp2.sink_counts)
          EXPECT_EQ(count, config.tokens) << what;

        // The paper's amortization: WP2 never slower than WP1, and with
        // relay stations on the feedback loop, strictly faster.
        EXPECT_LE(wp2.cycles, wp1.cycles) << what;
        if (feedback_rs > 0) EXPECT_LT(wp2.cycles, wp1.cycles) << what;
      }
    }
  }
}

TEST(Harness, Wp2FollowsTheAmortizationLaw) {
  // K/(K+n) on the AGC loop: cycles ≈ tokens·(K+n)/K plus pipeline fill.
  const std::uint64_t tokens = 4000;
  const std::uint64_t period = 16;
  const int feedback_rs = 4;
  const StreamGraphConfig config =
      small_graph(tokens, 1, 1, period, feedback_rs, 0);
  HarnessOptions options;
  options.record_metrics = false;
  const HarnessResult wp2 = run_stream_graph(config, options);
  const double expected =
      static_cast<double>(tokens) * (period + feedback_rs) / period;
  EXPECT_GE(static_cast<double>(wp2.cycles), expected * 0.98);
  EXPECT_LE(static_cast<double>(wp2.cycles), expected * 1.05 + 256.0);
}

TEST(Harness, SinkRetentionModeDoesNotChangeTheStream) {
  StreamGraphConfig config = small_graph(800, 2, 1, 8, 1, 0);
  HarnessOptions options;
  options.record_metrics = false;
  config.sink.keep_samples = false;
  const HarnessResult stats = run_stream_graph(config, options);
  config.sink.keep_samples = true;
  const HarnessResult keep = run_stream_graph(config, options);
  EXPECT_EQ(stats.digest, keep.digest);
  EXPECT_EQ(stats.cycles, keep.cycles);
}

TEST(Harness, CycleBudgetExhaustionFailsLoudly) {
  const StreamGraphConfig config = small_graph(5000, 1, 1, 16, 2, 0);
  HarnessOptions options;
  options.record_metrics = false;
  options.max_cycles = 50;  // nowhere near enough for 5000 tokens
  EXPECT_THROW(run_stream_graph(config, options), ContractViolation);
  options.mode = RunMode::kGolden;
  EXPECT_THROW(run_stream_graph(config, options), ContractViolation);
}

TEST(Harness, FlushesTokenAndBackpressureCountersIntoTheRegistry) {
  obs::Registry& registry = obs::Registry::global();
  const std::uint64_t processed_before =
      registry.counter("stream/tokens/processed").value();

  const StreamGraphConfig config = small_graph(500, 1, 2, 8, 2, 0);
  HarnessOptions options;
  options.time_stages = true;
  const HarnessResult result = run_stream_graph(config, options);

  EXPECT_EQ(registry.counter("stream/tokens/processed").value(),
            processed_before + result.tokens);
  EXPECT_GT(registry.counter("stream/cycles").value(), 0u);

  // Per-stage latency histograms exist and saw every firing.
  bool timed = false;
  for (const auto& stage : result.stages) {
    const obs::Histogram& h =
        registry.histogram("stream/stage_fire_ns/" + stage.name);
    EXPECT_GE(h.count(), stage.firings);
    timed = timed || stage.fire_count > 0;
    if (stage.firings > 0) EXPECT_GT(stage.fire_p99_ns, 0.0);
  }
  EXPECT_TRUE(timed);
}

// ------------------------------------------------------- the wire layer

eval::StreamJob wire_job() {
  eval::StreamJob job;
  job.graph = small_graph(700, 2, 2, 8, 2, 1);
  job.mode = RunMode::kWp2;
  job.fifo_capacity = 8;
  return job;
}

TEST(StreamWire, RequestRoundTripPreservesEveryField) {
  const eval::EvalRequest request{wire_job()};
  wire::Writer w;
  request.encode(w);
  wire::Reader r(w.bytes().data(), w.size());
  const eval::EvalRequest decoded = eval::EvalRequest::decode(r);

  ASSERT_EQ(decoded.kind, eval::RequestKind::kStreamRun);
  EXPECT_EQ(decoded.stream.graph.tokens, request.stream.graph.tokens);
  EXPECT_EQ(decoded.stream.graph.fir_stages, request.stream.graph.fir_stages);
  EXPECT_EQ(decoded.stream.graph.branches, request.stream.graph.branches);
  EXPECT_EQ(decoded.stream.graph.agc_period, request.stream.graph.agc_period);
  EXPECT_EQ(decoded.stream.graph.gain_period,
            request.stream.graph.gain_period);
  EXPECT_EQ(decoded.stream.graph.fir, request.stream.graph.fir);
  EXPECT_EQ(decoded.stream.graph.feedback_rs,
            request.stream.graph.feedback_rs);
  EXPECT_EQ(decoded.stream.graph.forward_rs, request.stream.graph.forward_rs);
  EXPECT_EQ(decoded.stream.mode, request.stream.mode);
  EXPECT_EQ(decoded.stream.fifo_capacity, request.stream.fifo_capacity);
  EXPECT_EQ(decoded.content_hash(), request.content_hash());
}

TEST(StreamWire, ReplyRoundTripAndEqualityIgnoreWallClock) {
  eval::EvalReply reply;
  reply.kind = eval::ReplyKind::kStream;
  reply.stream.tokens = 1400;
  reply.stream.cycles = 1620;
  reply.stream.digest = 0xdeadbeefcafef00dULL;
  reply.stream.sink_digests = {1, 2};
  reply.stream.sink_counts = {700, 700};
  reply.stream.input_stalls = 11;
  reply.stream.output_stalls = 7;
  reply.stream.discarded_tokens = 3;
  reply.stream.tokens_per_sec = 123456.0;

  wire::Writer w;
  reply.encode(w);
  wire::Reader r(w.bytes().data(), w.size());
  const eval::EvalReply decoded = eval::EvalReply::decode(r);
  ASSERT_EQ(decoded.kind, eval::ReplyKind::kStream);
  EXPECT_TRUE(decoded.stream == reply.stream);
  EXPECT_DOUBLE_EQ(decoded.stream.tokens_per_sec, 123456.0);

  // Wall clock is reporting, not contract.
  eval::StreamResult other = reply.stream;
  other.tokens_per_sec = 1.0;
  EXPECT_TRUE(other == reply.stream);
  other.digest ^= 1;
  EXPECT_FALSE(other == reply.stream);
}

TEST(StreamWire, EvaluateMatchesDirectHarnessRun) {
  const eval::StreamJob job = wire_job();
  const eval::EvalReply reply = eval::evaluate(eval::EvalRequest{job}, {});
  ASSERT_TRUE(reply.ok()) << reply.error.message;
  const eval::StreamResult& remote = eval::unwrap_stream(reply);

  StreamGraphConfig config = job.graph;
  config.sink.keep_samples = false;
  HarnessOptions options;
  options.mode = job.mode;
  options.fifo_capacity = static_cast<std::size_t>(job.fifo_capacity);
  const HarnessResult local = run_stream_graph(config, options);
  EXPECT_EQ(remote.digest, local.digest);
  EXPECT_EQ(remote.cycles, local.cycles);
  EXPECT_EQ(remote.sink_digests, local.sink_digests);
}

TEST(StreamWire, InvalidGraphBecomesTypedErrorNotThrow) {
  eval::StreamJob job = wire_job();
  job.graph.gain_period = 3;  // != agc_period: rejected at validation
  const eval::EvalReply reply = eval::evaluate(eval::EvalRequest{job}, {});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error.code, eval::ErrorCode::kEvalFailed);
  EXPECT_NE(reply.error.message.find("cadence"), std::string::npos)
      << reply.error.message;
}

// ------------------------------------------------------ the remote path

std::string unique_socket_path() {
  static int counter = 0;
  return "/tmp/wp_stream_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

svc::EvalServerOptions test_server_options() {
  svc::EvalServerOptions options;
  options.socket_path = unique_socket_path();
  options.workers = 2;
  options.oracle.use_env_persist = false;
  options.oracle.use_env_trace_mode = false;
  return options;
}

std::vector<eval::EvalRequest> stream_batch() {
  std::vector<eval::EvalRequest> requests;
  for (const int feedback_rs : {0, 2}) {
    for (const auto mode : {RunMode::kWp1, RunMode::kWp2}) {
      eval::StreamJob job;
      job.graph = small_graph(600, 2, 2, 8, feedback_rs, 0);
      job.mode = mode;
      requests.emplace_back(std::move(job));
    }
  }
  return requests;
}

TEST(StreamRemote, ServedStreamIsByteIdenticalToInProcess) {
  svc::EvalServer server(test_server_options());
  server.start();

  const std::vector<eval::EvalRequest> requests = stream_batch();
  svc::EvalClient client;
  client.connect(server.socket_path(), /*retries=*/10, /*retry_ms=*/50);
  const std::vector<eval::EvalReply> remote = client.evaluate(requests);
  const std::vector<eval::EvalReply> local =
      eval::evaluate_batch(requests, {});

  ASSERT_EQ(remote.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(remote[i].ok()) << remote[i].error.message;
    EXPECT_TRUE(eval::unwrap_stream(remote[i]) ==
                eval::unwrap_stream(local[i]))
        << "request " << i;
  }

  // The daemon's stats scrape exposes the stream metrics the harness
  // flushed — backpressure and token counters visible remotely.
  const std::string stats = client.stats_json();
  EXPECT_NE(stats.find("stream/tokens/processed"), std::string::npos);
  EXPECT_NE(stats.find("stream/backpressure/input_stalls"),
            std::string::npos);

  client.close();
  server.stop();
}

TEST(StreamRemote, ShardedAcrossTwoServersMergesByteIdentical) {
  svc::EvalServer server_a(test_server_options());
  svc::EvalServer server_b(test_server_options());
  server_a.start();
  server_b.start();

  svc::EvalClient client_a, client_b;
  client_a.connect(server_a.socket_path(), 10, 50);
  client_b.connect(server_b.socket_path(), 10, 50);

  const std::vector<eval::EvalRequest> requests = stream_batch();
  const std::vector<eval::EvalReply> sharded =
      svc::evaluate_sharded({&client_a, &client_b}, requests);
  const std::vector<eval::EvalReply> local =
      eval::evaluate_batch(requests, {});

  ASSERT_EQ(sharded.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(sharded[i].ok()) << sharded[i].error.message;
    EXPECT_TRUE(eval::unwrap_stream(sharded[i]) ==
                eval::unwrap_stream(local[i]))
        << "request " << i;
  }

  client_a.close();
  client_b.close();
  server_a.stop();
  server_b.stop();
}

}  // namespace
}  // namespace wp::stream
