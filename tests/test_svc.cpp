// Evaluation-service suite: frame codec round trips and strict rejection
// of every framing violation (bad magic / foreign version / reserved bits
// / oversize / checksum / trailing bytes), batch payload codecs, and an
// in-process EvalServer driven over real AF_UNIX sockets — replies must
// equal eval::evaluate_batch, a malformed payload must cost one kError
// frame but not the connection, a framing violation must cost the
// connection but never the server, seeded random byte blobs must never
// crash it, and evaluate_sharded across two servers must merge back to
// the single-process reply stream.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "eval/evaluate.hpp"
#include "eval/request.hpp"
#include "svc/eval_client.hpp"
#include "svc/eval_server.hpp"
#include "svc/protocol.hpp"

namespace wp::svc {
namespace {

// ----------------------------------------------------------- frame codec

std::vector<eval::EvalRequest> tiny_floorplan_batch(int count,
                                                    std::uint64_t seed0 = 50) {
  std::vector<eval::EvalRequest> requests;
  for (int i = 0; i < count; ++i) {
    eval::FloorplanJob job;
    job.topology.family = gen::TopologyFamily::kMesh;
    job.topology.num_nodes = 9;
    job.seed = seed0 + static_cast<std::uint64_t>(i);
    job.anneal.iterations = 12;
    job.anneal.weight_throughput = 10.0;
    requests.emplace_back(std::move(job));
  }
  return requests;
}

TEST(FrameCodec, RoundTripEveryType) {
  const std::vector<FrameType> types = {
      FrameType::kEvalBatch, FrameType::kReplyBatch, FrameType::kError,
      FrameType::kPing,      FrameType::kPong,       FrameType::kShutdown};
  for (const FrameType type : types) {
    const std::string payload =
        type == FrameType::kPing ? "" : "payload-for-type";
    const std::string bytes = encode_frame(type, payload);
    const Frame frame = decode_frame(bytes.data(), bytes.size());
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
  }
}

eval::ErrorCode decode_failure_code(std::string bytes) {
  try {
    decode_frame(bytes.data(), bytes.size());
  } catch (const ProtocolError& e) {
    return e.code();
  }
  return eval::ErrorCode::kNone;  // decoded fine — the test will notice
}

TEST(FrameCodec, RejectsEveryFramingViolation) {
  const std::string good = encode_frame(FrameType::kPing, "abc");

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_EQ(decode_failure_code(bad_magic),
            eval::ErrorCode::kMalformedFrame);

  std::string bad_version = good;
  bad_version[4] = static_cast<char>(kFrameVersion + 1);
  EXPECT_EQ(decode_failure_code(bad_version), eval::ErrorCode::kBadVersion);

  std::string bad_type = good;
  bad_type[5] = 99;
  EXPECT_EQ(decode_failure_code(bad_type), eval::ErrorCode::kMalformedFrame);

  std::string reserved_bits = good;
  reserved_bits[6] = 1;
  EXPECT_EQ(decode_failure_code(reserved_bits),
            eval::ErrorCode::kMalformedFrame);

  // Declared length over the cap: patch payload_len (offset 8, LE u32) to
  // kMaxFramePayload + 1.
  std::string oversize = good;
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(&oversize[8], &huge, sizeof huge);
  EXPECT_EQ(decode_failure_code(oversize), eval::ErrorCode::kOversizedFrame);

  std::string bad_checksum = good;
  bad_checksum[bad_checksum.size() - 1] ^= 0x5a;
  EXPECT_EQ(decode_failure_code(bad_checksum),
            eval::ErrorCode::kMalformedFrame);

  std::string flipped_payload = good;
  flipped_payload[12] ^= 0x01;  // payload no longer matches the checksum
  EXPECT_EQ(decode_failure_code(flipped_payload),
            eval::ErrorCode::kMalformedFrame);

  EXPECT_EQ(decode_failure_code(good + "x"),
            eval::ErrorCode::kMalformedFrame);
  for (std::size_t cut = 0; cut < good.size(); ++cut)
    EXPECT_EQ(decode_failure_code(good.substr(0, cut)),
              eval::ErrorCode::kMalformedFrame)
        << "cut at " << cut;
}

TEST(FrameCodec, OversizedPayloadRefusedAtEncode) {
  EXPECT_THROW(
      encode_frame(FrameType::kEvalBatch,
                   std::string(kMaxFramePayload + 1, 'a')),
      ProtocolError);
}

TEST(FrameCodec, RequestBatchPayloadRoundTrip) {
  const std::vector<eval::EvalRequest> batch = tiny_floorplan_batch(3);
  const std::string payload = encode_request_batch(batch);
  const std::vector<eval::EvalRequest> decoded =
      decode_request_batch(payload);
  ASSERT_EQ(decoded.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(decoded[i].content_hash(), batch[i].content_hash()) << i;
  EXPECT_THROW(decode_request_batch("garbage bytes"), wire::WireError);
}

TEST(FrameCodec, ErrorPayloadRoundTrip) {
  const std::string payload =
      encode_error(eval::ErrorCode::kMalformedRequest, "what happened");
  const eval::EvalError error = decode_error(payload);
  EXPECT_EQ(error.code, eval::ErrorCode::kMalformedRequest);
  EXPECT_EQ(error.message, "what happened");
}

// ------------------------------------------------------- server fixture

std::string unique_socket_path() {
  static int counter = 0;
  return "/tmp/wp_svc_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

EvalServerOptions test_server_options() {
  EvalServerOptions options;
  options.socket_path = unique_socket_path();
  options.workers = 2;
  options.oracle.use_env_persist = false;
  options.oracle.use_env_trace_mode = false;
  return options;
}

/// Raw client socket, for writing bytes the EvalClient would refuse to.
int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << path;
  return fd;
}

TEST(EvalServer, BatchRepliesMatchInProcessEvaluation) {
  EvalServer server(test_server_options());
  server.start();

  std::vector<eval::EvalRequest> requests = tiny_floorplan_batch(4);
  {
    eval::FloorplanJob bad;
    bad.topology.num_nodes = -1;
    requests.emplace_back(std::move(bad));
  }

  EvalClient client;
  client.connect(server.socket_path(), /*retries=*/10, /*retry_ms=*/50);
  const std::vector<eval::EvalReply> remote = client.evaluate(requests);
  const std::vector<eval::EvalReply> local =
      eval::evaluate_batch(requests, {});

  ASSERT_EQ(remote.size(), requests.size());
  ASSERT_EQ(local.size(), requests.size());
  for (std::size_t i = 0; i + 1 < requests.size(); ++i) {
    ASSERT_TRUE(remote[i].ok()) << remote[i].error.message;
    EXPECT_TRUE(remote[i].floorplan == local[i].floorplan) << i;
  }
  // The poisoned request became a typed error reply, not a dead server.
  EXPECT_FALSE(remote.back().ok());
  EXPECT_EQ(remote.back().error.code, eval::ErrorCode::kEvalFailed);
  EXPECT_TRUE(client.ping());

  client.close();
  server.stop();
  const EvalServer::Stats stats = server.stats();
  EXPECT_EQ(stats.requests, requests.size());
  EXPECT_EQ(stats.dropped_connections, 0u);
}

TEST(EvalServer, MalformedPayloadCostsOneErrorFrameNotTheConnection) {
  EvalServer server(test_server_options());
  server.start();

  const int fd = raw_connect(server.socket_path());
  // Well-framed garbage: the frame decodes, the payload does not.
  write_frame(fd, FrameType::kEvalBatch, "this is not a request batch");
  auto reply = read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ(decode_error(reply->payload).code,
            eval::ErrorCode::kMalformedRequest);

  // Same connection, now a valid batch: it must still be served.
  write_frame(fd, FrameType::kEvalBatch,
              encode_request_batch(tiny_floorplan_batch(1)));
  auto good = read_frame(fd);
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->type, FrameType::kReplyBatch);
  EXPECT_EQ(decode_reply_batch(good->payload).size(), 1u);

  ::close(fd);
  server.stop();
  EXPECT_EQ(server.stats().dropped_connections, 0u);
  EXPECT_GE(server.stats().error_frames, 1u);
}

TEST(EvalServer, FramingViolationDropsOnlyThatConnection) {
  EvalServer server(test_server_options());
  server.start();

  const int fd = raw_connect(server.socket_path());
  const std::string junk = "NOT A FRAME AT ALL, JUST BYTES";
  ASSERT_EQ(::write(fd, junk.data(), junk.size()),
            static_cast<ssize_t>(junk.size()));
  ::shutdown(fd, SHUT_WR);
  // The server answers with a best-effort kError frame and closes; all we
  // require here is that the connection ends instead of hanging.
  try {
    while (read_frame(fd).has_value()) {
    }
  } catch (const ProtocolError&) {
    // mid-frame EOF on the error frame is also an acceptable ending
  }
  ::close(fd);

  // The server is still alive for new connections.
  EvalClient client;
  client.connect(server.socket_path(), /*retries=*/10, /*retry_ms=*/50);
  EXPECT_TRUE(client.ping());
  client.close();
  server.stop();
  EXPECT_GE(server.stats().dropped_connections, 1u);
}

TEST(EvalServer, OversizedDeclaredLengthIsRefused) {
  EvalServer server(test_server_options());
  server.start();

  const int fd = raw_connect(server.socket_path());
  // Hand-build a header declaring a payload over the cap.
  wire::Writer w;
  w.u32(kFrameMagic);
  w.u8(kFrameVersion);
  w.u8(static_cast<std::uint8_t>(FrameType::kEvalBatch));
  w.u16(0);
  w.u32(kMaxFramePayload + 1);
  const std::string& header = w.bytes();
  ASSERT_EQ(::write(fd, header.data(), header.size()),
            static_cast<ssize_t>(header.size()));

  auto reply = read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ(decode_error(reply->payload).code,
            eval::ErrorCode::kOversizedFrame);
  ::close(fd);

  EvalClient client;
  client.connect(server.socket_path(), /*retries=*/10, /*retry_ms=*/50);
  EXPECT_TRUE(client.ping());
  client.close();
  server.stop();
}

TEST(EvalServer, SurvivesSeededRandomBlobFuzzing) {
  EvalServer server(test_server_options());
  server.start();

  std::mt19937_64 rng(0xf00dULL);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> length(1, 512);
  for (int round = 0; round < 40; ++round) {
    const int fd = raw_connect(server.socket_path());
    std::string blob(length(rng), '\0');
    for (char& c : blob) c = static_cast<char>(byte(rng));
    // Half the rounds lead with the real magic so the fuzz also exercises
    // the post-header validation paths, not just the magic check.
    if (round % 2 == 0 && blob.size() >= 4)
      std::memcpy(&blob[0], &kFrameMagic, sizeof kFrameMagic);
    (void)!::write(fd, blob.data(), blob.size());
    ::shutdown(fd, SHUT_WR);
    try {
      while (read_frame(fd).has_value()) {
      }
    } catch (const ProtocolError&) {
    }
    ::close(fd);
  }

  // After 40 hostile connections the server still evaluates correctly.
  EvalClient client;
  client.connect(server.socket_path(), /*retries=*/10, /*retry_ms=*/50);
  EXPECT_TRUE(client.ping());
  const std::vector<eval::EvalRequest> requests = tiny_floorplan_batch(2);
  const std::vector<eval::EvalReply> remote = client.evaluate(requests);
  const std::vector<eval::EvalReply> local =
      eval::evaluate_batch(requests, {});
  ASSERT_EQ(remote.size(), 2u);
  EXPECT_TRUE(remote[0].floorplan == local[0].floorplan);
  EXPECT_TRUE(remote[1].floorplan == local[1].floorplan);
  client.close();
  server.stop();
}

TEST(EvalServer, ShutdownFrameEndsWait) {
  EvalServer server(test_server_options());
  server.start();

  EvalClient client;
  client.connect(server.socket_path(), /*retries=*/10, /*retry_ms=*/50);
  client.shutdown_server();
  server.wait();  // must return now instead of blocking
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(EvalServer, ShardedEvaluationMatchesSingleProcess) {
  EvalServer server_a(test_server_options());
  EvalServer server_b(test_server_options());
  server_a.start();
  server_b.start();

  EvalClient client_a, client_b;
  client_a.connect(server_a.socket_path(), /*retries=*/10, /*retry_ms=*/50);
  client_b.connect(server_b.socket_path(), /*retries=*/10, /*retry_ms=*/50);

  const std::vector<eval::EvalRequest> requests = tiny_floorplan_batch(7);
  const std::vector<eval::EvalReply> sharded =
      evaluate_sharded({&client_a, &client_b}, requests);
  const std::vector<eval::EvalReply> local =
      eval::evaluate_batch(requests, {});

  ASSERT_EQ(sharded.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(sharded[i].ok()) << sharded[i].error.message;
    EXPECT_TRUE(sharded[i].floorplan == local[i].floorplan) << i;
  }
  // The work genuinely split: each server saw a strict subset.
  client_a.close();
  client_b.close();
  server_a.stop();
  server_b.stop();
  EXPECT_EQ(server_a.stats().requests + server_b.stats().requests,
            requests.size());
  EXPECT_GT(server_a.stats().requests, 0u);
  EXPECT_GT(server_b.stats().requests, 0u);
}

}  // namespace
}  // namespace wp::svc
