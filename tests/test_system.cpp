// System-level tests: golden vs LID cycle-identity at zero relay stations,
// the Th = m/(m+n) loop formula in simulation (parameterized ring sweep),
// equivalence checking, and back-pressure safety with tiny FIFOs.
#include <gtest/gtest.h>

#include "util/assert.hpp"

#include "core/procs.hpp"
#include "core/system.hpp"

namespace wp {
namespace {

/// A ring of `m` accumulator-ish identity stages with a source-free closed
/// loop: stage i feeds stage (i+1) mod m. Every stage also counts firings;
/// the ring sustains one token per stage.
SystemSpec ring_system(int m) {
  SystemSpec spec;
  for (int i = 0; i < m; ++i) {
    spec.add_process("p" + std::to_string(i), [i]() {
      // Reset output value = stage index, so values circulate and mix.
      return std::make_unique<IdentityProcess>("p" + std::to_string(i),
                                               static_cast<Word>(i));
    });
  }
  for (int i = 0; i < m; ++i)
    spec.add_channel("p" + std::to_string(i), "out",
                     "p" + std::to_string((i + 1) % m), "in",
                     "ring" + std::to_string(i));
  return spec;
}

TEST(System, GoldenRunsAndTraces) {
  SystemSpec spec = ring_system(3);
  GoldenSim golden(spec, true);
  for (int i = 0; i < 10; ++i) golden.step();
  EXPECT_EQ(golden.cycle(), 10u);
  const auto& trace = golden.trace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.at("p0.out").size(), 10u);
  // Identity ring of period 3: p0 emits the value it got from p2.
  EXPECT_EQ(trace.at("p0.out")[0], 2u);  // p2's reset value
}

TEST(System, LidZeroRsIsCycleAccurate) {
  SystemSpec spec = ring_system(4);
  GoldenSim golden(spec, true);
  for (int i = 0; i < 50; ++i) golden.step();

  LidSystem lid = build_lid(spec, ShellOptions{}, true);
  for (int i = 0; i < 50; ++i) lid.network->step();

  // Every shell fired every cycle (throughput 1.0)...
  for (const auto& [name, shell] : lid.shells)
    EXPECT_EQ(shell->stats().firings, 50u) << name;
  // ...and the τ-filtered streams match the golden ones exactly.
  const auto eq = check_equivalence(golden.trace(), lid.trace);
  EXPECT_TRUE(eq.equivalent) << eq.detail;
  EXPECT_EQ(eq.events_checked, 4u * 50u);
}

/// Simulated WP1 ring throughput must equal m/(m+n) (paper §2).
class RingThroughput
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(RingThroughput, MatchesLoopFormula) {
  const auto [m, n, oracle] = GetParam();
  SystemSpec spec = ring_system(m);
  spec.set_connection_rs("ring0", n);  // n relay stations on one edge

  ShellOptions opts;
  opts.use_oracle = oracle;
  LidSystem lid = build_lid(spec, opts, false);
  const std::uint64_t cycles = 3000;
  for (std::uint64_t i = 0; i < cycles; ++i) lid.network->step();

  const double expected = static_cast<double>(m) / (m + n);
  for (const auto& [name, shell] : lid.shells) {
    const double th =
        static_cast<double>(shell->stats().firings) / static_cast<double>(cycles);
    // IdentityProcess has no oracle slack, so WP1 == WP2 == m/(m+n).
    EXPECT_NEAR(th, expected, 0.01) << name << " m=" << m << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RingThroughput,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(0, 1, 2, 4),
                       ::testing::Values(false, true)));

/// Distributing the same total RS differently around a loop must not change
/// throughput (only the sum m+n matters).
TEST(System, RsPlacementWithinLoopIsIrrelevant) {
  for (const std::vector<int>& split : std::vector<std::vector<int>>{
           {3, 0, 0}, {1, 1, 1}, {0, 2, 1}}) {
    SystemSpec spec = ring_system(3);
    for (int i = 0; i < 3; ++i)
      spec.set_connection_rs("ring" + std::to_string(i),
                             split[static_cast<std::size_t>(i)]);
    LidSystem lid = build_lid(spec, ShellOptions{}, false);
    for (int i = 0; i < 2400; ++i) lid.network->step();
    const double th = static_cast<double>(
                          lid.shells.at("p0")->stats().firings) /
                      2400.0;
    EXPECT_NEAR(th, 0.5, 0.01);  // 3/(3+3)
  }
}

TEST(System, TinyFifosStillLoseNothing) {
  // With capacity-1 FIFOs the ring must still make progress and stay
  // token-conserving (throughput may drop, correctness may not).
  SystemSpec spec = ring_system(3);
  spec.set_all_rs(2);
  ShellOptions opts;
  opts.fifo_capacity = 1;
  GoldenSim golden(spec, true);
  for (int i = 0; i < 200; ++i) golden.step();
  LidSystem lid = build_lid(spec, opts, true);
  for (int i = 0; i < 2000; ++i) lid.network->step();
  EXPECT_GT(lid.shells.at("p0")->stats().firings, 50u);
  const auto eq = check_equivalence(golden.trace(), lid.trace);
  EXPECT_TRUE(eq.equivalent) << eq.detail;
}

TEST(System, SourceSinkPipelineDeliversSequence) {
  SystemSpec spec;
  spec.add_process("src", []() {
    return std::make_unique<CounterSource>("src", 5, 3, 0);
  });
  spec.add_process("sink", []() {
    return std::make_unique<SinkProcess>("sink", 40);
  });
  spec.add_channel("src", "out", "sink", "in");
  spec.set_all_rs(3);

  LidSystem lid = build_lid(spec, ShellOptions{}, false);
  lid.run_until_halt(10000, /*grace=*/0);
  const auto& sink =
      dynamic_cast<const SinkProcess&>(lid.shells.at("sink")->process());
  ASSERT_GE(sink.received().size(), 40u);
  for (std::size_t i = 0; i < 40; ++i) {
    // First value is the channel's initial token (source reset value 5),
    // then the source's emitted sequence 5, 8, 11, ...
    const Word expected = i == 0 ? 5 : 5 + 3 * (static_cast<Word>(i) - 1);
    EXPECT_EQ(sink.received()[i], expected) << i;
  }
}

TEST(System, EquivalenceCheckerFindsDivergence) {
  Trace a{{"p.out", {1, 2, 3}}};
  Trace b{{"p.out", {1, 9, 3}}};
  const auto eq = check_equivalence(a, b);
  EXPECT_FALSE(eq.equivalent);
  EXPECT_NE(eq.detail.find("tag 1"), std::string::npos);
}

TEST(System, EquivalenceIsPrefixBased) {
  Trace golden{{"p.out", {1, 2, 3, 4, 5}}};
  Trace wp{{"p.out", {1, 2, 3}}};  // shorter (stalled) but equivalent
  const auto eq = check_equivalence(golden, wp);
  EXPECT_TRUE(eq.equivalent);
  EXPECT_EQ(eq.events_checked, 3u);
}

TEST(System, EquivalenceIgnoresUnsharedStreams) {
  Trace golden{{"p.out", {1}}, {"q.out", {7}}};
  Trace wp{{"p.out", {1}}};
  EXPECT_TRUE(check_equivalence(golden, wp).equivalent);
}

TEST(System, SpecValidation) {
  SystemSpec spec;
  spec.add_process("a", []() { return std::make_unique<IdentityProcess>("a"); });
  EXPECT_THROW(spec.add_process("a", []() {
    return std::make_unique<IdentityProcess>("a");
  }), ContractViolation);
  EXPECT_THROW(spec.add_channel("a", "out", "missing", "in"),
               ContractViolation);
  spec.add_process("b", []() { return std::make_unique<IdentityProcess>("b"); });
  spec.add_channel("a", "out", "b", "in");
  EXPECT_THROW(spec.set_connection_rs("nope", 1), ContractViolation);
  spec.set_connection_rs("a-b", 2);
  EXPECT_EQ(spec.channels()[0].relay_stations, 2);
}

TEST(System, ResetReproducesTheRunExactly) {
  // Network::reset must restore wires, relay stations and shells (tags,
  // FIFOs, initial tokens) to power-on state: a re-run yields the same
  // τ-filtered trace.
  SystemSpec spec = ring_system(3);
  spec.set_connection_rs("ring1", 2);
  ShellOptions wp2;
  wp2.use_oracle = true;
  LidSystem lid = build_lid(spec, wp2, true);
  for (int i = 0; i < 400; ++i) lid.network->step();
  const Trace first = lid.trace;
  lid.trace.clear();
  lid.network->reset();
  EXPECT_EQ(lid.network->cycle(), 0u);
  for (int i = 0; i < 400; ++i) lid.network->step();
  EXPECT_EQ(first, lid.trace);
}

TEST(System, BoundedFifosMatchTheSemiInfiniteAbstraction) {
  // Paper §1 first defines the wrapper with "semi-infinite fifos", then
  // bounds them with back-pressure. Both must produce identical streams
  // and identical throughput once the bound exceeds the loop slack.
  SystemSpec spec = ring_system(4);
  spec.set_connection_rs("ring0", 3);
  Trace traces[2];
  std::uint64_t firings[2];
  int variant = 0;
  for (const std::size_t capacity : {4u, 1u << 20}) {
    ShellOptions opts;
    opts.use_oracle = true;
    opts.fifo_capacity = capacity;  // 2^20 ~ the semi-infinite abstraction
    LidSystem lid = build_lid(spec, opts, true);
    for (int i = 0; i < 1000; ++i) lid.network->step();
    traces[variant] = std::move(lid.trace);
    firings[variant] = lid.shells.at("p0")->stats().firings;
    ++variant;
  }
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(firings[0], firings[1]);
}

TEST(System, GoldenUnconnectedInputReadsItsResetValue) {
  SystemSpec spec;
  spec.add_process("lonely", []() {
    auto p = std::make_unique<AdderProcess>("lonely");
    return p;
  });
  spec.add_process("echo", []() {
    return std::make_unique<IdentityProcess>("echo", 0);
  });
  // Only input a is fed; input b stays unconnected (reset value 0).
  spec.add_channel("echo", "out", "lonely", "a");
  spec.add_channel("lonely", "sum", "echo", "in");
  GoldenSim golden(spec, true);
  for (int i = 0; i < 10; ++i) golden.step();
  // sum = a + 0 forever: the loop circulates the initial 0s.
  for (Word v : golden.trace().at("lonely.sum")) EXPECT_EQ(v, 0u);
}

TEST(System, HaltGraceDrainsInFlightTokens) {
  SystemSpec spec;
  spec.add_process("src", []() {
    return std::make_unique<CounterSource>("src", 1, 1, 20);  // halts at 20
  });
  spec.add_process("sink", []() {
    return std::make_unique<SinkProcess>("sink", 0);
  });
  spec.add_channel("src", "out", "sink", "in");
  spec.set_all_rs(4);

  for (const std::uint64_t grace : {0ull, 64ull}) {
    LidSystem lid = build_lid(spec, ShellOptions{}, false);
    lid.run_until_halt(10000, grace);
    const auto& sink =
        dynamic_cast<const SinkProcess&>(lid.shells.at("sink")->process());
    if (grace == 0) {
      EXPECT_LT(sink.received().size(), 21u);  // tail still in the RS chain
    } else {
      EXPECT_EQ(sink.received().size(), 21u);  // initial token + 20 emitted
    }
  }
}

TEST(System, WatchdogThrowsAfterQuietWindow) {
  // A chain with no source stalls once the initial tokens are consumed;
  // an armed watchdog must convert that into a loud failure.
  SystemSpec spec;
  spec.add_process("a", []() { return std::make_unique<IdentityProcess>("a"); });
  spec.add_process("b", []() { return std::make_unique<IdentityProcess>("b"); });
  spec.add_channel("a", "out", "b", "in");
  spec.add_channel("b", "out", "a", "in");
  spec.set_all_rs(2);  // loop throughput 2/(2+4): still progresses
  LidSystem lid = build_lid(spec, ShellOptions{}, false);
  std::uint64_t last = 0;
  lid.network->arm_watchdog(
      [&]() {
        // Claim progress only when a NEW firing happened; rings progress
        // forever, so force a fake stall by capping the count.
        const std::uint64_t now =
            std::min<std::uint64_t>(lid.total_firings(), 5);
        const bool progressed = now != last;
        last = now;
        return progressed;
      },
      /*window=*/50);
  EXPECT_THROW(lid.network->run(100000, []() { return false; }),
               ContractViolation);
}

TEST(System, WatchdogDetectsDeadlock) {
  // Two strict shells that wait on each other with no initial token cannot
  // exist through build_lid (channels always seed one token), so emulate a
  // stall: a sink whose producer never fires because its own input is never
  // fed. A 2-node chain without a source stalls after the initial tokens.
  SystemSpec spec;
  spec.add_process("x", []() { return std::make_unique<IdentityProcess>("x"); });
  spec.add_process("y", []() { return std::make_unique<IdentityProcess>("y"); });
  spec.add_channel("x", "out", "y", "in");
  // x's input is unconnected -> build must reject it.
  EXPECT_THROW(build_lid(spec, ShellOptions{}, false).network->step(),
               ContractViolation);
}

}  // namespace
}  // namespace wp
