// Tests of the parallel exploration engine's foundation: ThreadPool
// ordering/exception/parallel_for semantics and the ParallelSweep runner's
// equivalence with sequential experiment execution.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <vector>

#include "proc/experiment.hpp"
#include "util/thread_pool.hpp"

namespace wp {
namespace {

TEST(ThreadPool, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  auto future = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> pending;
  for (int i = 0; i < 32; ++i)
    pending.push_back(pool.submit([i, &order]() { order.push_back(i); }));
  for (auto& f : pending) f.get();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kBegin = 3, kEnd = 1003;
  std::vector<std::atomic<int>> hits(kEnd);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(kBegin, kEnd,
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kEnd; ++i)
    EXPECT_EQ(hits[i].load(), i >= kBegin ? 1 : 0) << "index " << i;
}

TEST(ThreadPool, ParallelForEmptyRangeIsANoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&calls](std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&completed](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  // Every other chunk still executed: the pool finishes the whole range
  // before rethrowing, only the throwing chunk's tail is skipped (with 4
  // workers: 16 chunks of ceil(100/16) = 7 indices).
  EXPECT_GE(completed.load(), 93);
  EXPECT_LE(completed.load(), 99);
}

TEST(ThreadPool, ParallelForGrainCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kBegin = 2, kEnd = 247;
  for (const std::size_t grain :
       {std::size_t{1}, std::size_t{3}, std::size_t{64}, std::size_t{500}}) {
    std::vector<std::atomic<int>> hits(kEnd);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(
        kBegin, kEnd, [&hits](std::size_t i) { hits[i].fetch_add(1); },
        grain);
    for (std::size_t i = 0; i < kEnd; ++i)
      EXPECT_EQ(hits[i].load(), i >= kBegin ? 1 : 0)
          << "index " << i << ", grain " << grain;
  }
}

TEST(ThreadPool, ParallelForGrainPartitionIsDeterministicAndExclusive) {
  // The documented grain contract: index i belongs to chunk
  // (i - begin) / grain, chunks are contiguous, and no two chunks overlap
  // — so per-chunk scratch needs no synchronisation. Guard exactly that:
  // each chunk's slot is entered by one thread at a time and its indices
  // arrive in ascending order.
  ThreadPool pool(4);
  constexpr std::size_t kEnd = 120, kGrain = 7;
  constexpr std::size_t kChunks = (kEnd + kGrain - 1) / kGrain;
  std::vector<std::atomic<bool>> in_use(kChunks);
  for (auto& f : in_use) f.store(false);
  std::vector<std::vector<std::size_t>> seen(kChunks);
  std::atomic<bool> overlapped{false};
  pool.parallel_for(
      0, kEnd,
      [&](std::size_t i) {
        const std::size_t chunk = i / kGrain;
        if (in_use[chunk].exchange(true)) overlapped.store(true);
        seen[chunk].push_back(i);  // safe iff the partition is exclusive
        in_use[chunk].store(false);
      },
      kGrain);
  EXPECT_FALSE(overlapped.load());
  for (std::size_t c = 0; c < kChunks; ++c) {
    const std::size_t lo = c * kGrain;
    const std::size_t hi = std::min(kEnd, lo + kGrain);
    ASSERT_EQ(seen[c].size(), hi - lo) << "chunk " << c;
    for (std::size_t j = 0; j < seen[c].size(); ++j)
      EXPECT_EQ(seen[c][j], lo + j) << "chunk " << c;
  }
}

TEST(ThreadPool, ParallelForGrainRethrowsAndSkipsOnlyTheThrowingChunk) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(
          0, 100,
          [&completed](std::size_t i) {
            if (i == 40) throw std::runtime_error("boom");
            completed.fetch_add(1);
          },
          /*grain=*/10),
      std::runtime_error);
  // Chunks of exactly 10: the [40, 50) chunk stops at 40, every other
  // chunk completes — 90 successful indices, deterministically.
  EXPECT_EQ(completed.load(), 90);
}

TEST(ThreadPool, ManyConcurrentSubmitsAllExecute) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> pending;
  for (int i = 1; i <= 200; ++i)
    pending.push_back(pool.submit([i, &sum]() { sum.fetch_add(i); }));
  for (auto& f : pending) f.get();
  EXPECT_EQ(sum.load(), 200 * 201 / 2);
}

TEST(ThreadPool, NestedParallelForRunsInlineInsteadOfDeadlocking) {
  // parallel_for called from a task already on the pool must not block on
  // futures no free worker could ever dequeue — a single-worker pool makes
  // the deadlock deterministic if the inline fallback regresses.
  ThreadPool pool(1);
  std::atomic<int> inner{0};
  auto outer = pool.submit([&pool, &inner]() {
    pool.parallel_for(0, 50, [&inner](std::size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(outer.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  outer.get();
  EXPECT_EQ(inner.load(), 50);
}

TEST(ThreadPool, SharedPoolIsAStableSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().size(), 1u);
}

// ------------------------------------------------------------ ParallelSweep

bool rows_equal(const proc::ExperimentRow& a, const proc::ExperimentRow& b) {
  return a.label == b.label && a.golden_cycles == b.golden_cycles &&
         a.wp1_cycles == b.wp1_cycles && a.wp2_cycles == b.wp2_cycles &&
         a.th_wp1 == b.th_wp1 && a.th_wp2 == b.th_wp2 &&
         a.static_wp1 == b.static_wp1 &&
         a.wp1_equivalent == b.wp1_equivalent &&
         a.wp2_equivalent == b.wp2_equivalent && a.result_ok == b.result_ok;
}

TEST(ParallelSweep, MatchesSequentialExperimentRows) {
  const proc::ProgramSpec program = proc::extraction_sort_program(8, 1);
  const proc::CpuConfig cpu;
  proc::ExperimentOptions options;
  options.check_equivalence = false;

  const std::vector<proc::RsConfig> configs = {
      {"All 0 (ideal)", {}},
      {"Only CU-RF", {{"CU-RF", 1}}},
      {"RF-DC x2", {{"RF-DC", 2}}},
  };

  ThreadPool pool(3);
  const proc::ParallelSweep sweep(program, cpu, options);
  const auto parallel_rows = sweep.run(configs, &pool);

  ASSERT_EQ(parallel_rows.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto sequential =
        proc::run_experiment(program, cpu, configs[i], options);
    EXPECT_TRUE(rows_equal(parallel_rows[i], sequential))
        << "row " << i << " (" << configs[i].label << ") diverged";
  }
}

TEST(ParallelSweep, AnalyzeReportsCriticalLoopPerPoint) {
  const proc::ProgramSpec program = proc::extraction_sort_program(8, 1);
  const proc::ParallelSweep sweep(program, {}, {});
  const std::vector<proc::RsConfig> configs = {
      {"ideal", {}},
      {"Only CU-IC", {{"CU-IC", 1}}},
  };
  ThreadPool pool(2);
  const auto reports = sweep.analyze(configs, &pool);
  ASSERT_EQ(reports.size(), 2u);
  // The un-pipelined CPU graph runs at full throughput; one RS on the
  // fetch loop drags the system below 1.
  EXPECT_DOUBLE_EQ(reports[0].system_throughput, 1.0);
  EXPECT_LT(reports[1].system_throughput, 1.0);
  EXPECT_FALSE(reports[1].critical_loop.empty());
}

}  // namespace
}  // namespace wp
