// Differential guardrail for the incremental throughput engine:
// graph::ThroughputEngine must be *bitwise* identical to a fresh
// min_cycle_ratio_howard() on an equivalently configured graph, across
// random demand-perturbation chains on every topology family — including
// through apply/undo, across the incremental-vs-cold-fallback paths, and
// under the thread pool (serial ≡ pooled). Also pins the annealer
// integration (engine-backed run ≡ ThroughputEvaluator-backed run, the
// pre-engine oracle) and the ensemble's engine-counter determinism.
//
// This suite is the engine's equivalent of test_pack_equivalence and runs
// explicitly in the Debug and ASan/UBSan CI jobs.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/assert.hpp"

#include "floorplan/annealer.hpp"
#include "floorplan/instances.hpp"
#include "gen/ensemble.hpp"
#include "gen/topologies.hpp"
#include "graph/cycle_ratio.hpp"
#include "graph/throughput.hpp"
#include "graph/throughput_engine.hpp"
#include "proc/cpu.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wp::graph {
namespace {

using Demand = std::vector<std::pair<std::string, int>>;

/// The reference semantics the engine must reproduce: copy the base graph,
/// apply the demand per label (unmentioned labels keep base counts), solve
/// fresh with the certified Howard path.
Digraph configured(const Digraph& base, const Demand& demand) {
  Digraph g = base;
  for (const auto& [label, rs] : demand)
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      if (g.edge(e).label == label) g.edge(e).relay_stations = rs;
  return g;
}

double fresh_ratio(const Digraph& base, const Demand& demand) {
  return min_cycle_ratio_howard(configured(base, demand)).ratio;
}

std::vector<std::string> labels_of(const Digraph& g) {
  std::vector<std::string> labels;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const std::string& label = g.edge(e).label;
    if (std::find(labels.begin(), labels.end(), label) == labels.end())
      labels.push_back(label);
  }
  return labels;
}

/// One topology per family, relay stations cleared (the ensemble's base
/// shape: demand is applied on top of a zero-RS graph).
std::vector<Digraph> family_topologies(int nodes, std::uint64_t seed) {
  std::vector<Digraph> graphs;
  for (const gen::TopologyFamily family :
       {gen::TopologyFamily::kBarabasiAlbert,
        gen::TopologyFamily::kWattsStrogatz, gen::TopologyFamily::kMesh,
        gen::TopologyFamily::kClusteredErdosRenyi}) {
    gen::TopologyConfig config;
    config.family = family;
    config.num_nodes = nodes;
    Rng rng(seed + static_cast<std::uint64_t>(family) * 77);
    Digraph g = gen::generate_topology(config, rng);
    for (EdgeId e = 0; e < g.num_edges(); ++e)
      g.edge(e).relay_stations = 0;
    graphs.push_back(std::move(g));
  }
  return graphs;
}

/// A randomized demand chain shaped like an annealer's: mostly small
/// perturbations of the previous demand (the incremental sweet spot),
/// occasionally a fresh random full demand (certificate stress), sometimes
/// a repeat (the unchanged fast path).
std::vector<Demand> demand_chain(const std::vector<std::string>& labels,
                                 int length, Rng& rng) {
  std::vector<Demand> chain;
  std::map<std::string, int> current;
  for (const auto& label : labels) current[label] = 0;
  for (int step = 0; step < length; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.15 && !chain.empty()) {
      chain.push_back(chain.back());  // identical demand
      continue;
    }
    if (roll < 0.30) {
      for (auto& [label, rs] : current)
        rs = static_cast<int>(rng.below(5));  // jump
    } else {
      const int mutations = 1 + static_cast<int>(rng.below(2));
      for (int m = 0; m < mutations; ++m) {
        auto it = current.begin();
        std::advance(it, static_cast<long>(rng.below(current.size())));
        it->second = static_cast<int>(rng.below(5));
      }
    }
    chain.push_back(Demand(current.begin(), current.end()));
  }
  return chain;
}

class EngineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EngineEquivalence, RandomDemandChainsMatchFreshHoward) {
  const int nodes = GetParam();
  for (const Digraph& base : family_topologies(nodes, 100 + nodes)) {
    ThroughputEngine engine(base);
    Rng rng(500 + nodes);
    const auto chain = demand_chain(labels_of(base), 60, rng);
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const double expected = fresh_ratio(base, chain[i]);
      ASSERT_EQ(engine.throughput(chain[i]), expected)
          << "nodes=" << nodes << " step " << i;
    }
    const ThroughputEngine::Stats& stats = engine.stats();
    EXPECT_EQ(stats.queries, chain.size());
    EXPECT_EQ(stats.incremental() + stats.fallbacks, stats.queries);
    // The chain is perturbation-shaped, so the incremental paths must
    // actually carry it — a silently always-cold engine would still be
    // correct, but pointless.
    EXPECT_GT(stats.incremental(), stats.queries / 2)
        << "nodes=" << nodes;
  }
}

TEST_P(EngineEquivalence, MatchesReferenceEvaluatorOnSameChain) {
  const int nodes = GetParam();
  for (const Digraph& base : family_topologies(nodes, 4000 + nodes)) {
    ThroughputEngine engine(base);
    ThroughputEvaluator evaluator(base);  // the pre-engine oracle
    Rng rng(900 + nodes);
    for (const auto& demand : demand_chain(labels_of(base), 40, rng))
      ASSERT_EQ(engine.throughput(demand), evaluator(demand));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EngineEquivalence,
                         ::testing::Values(8, 24, 48));

TEST(ThroughputEngine, ColdModeMatchesIncrementalEverywhere) {
  for (const Digraph& base : family_topologies(24, 31)) {
    ThroughputEngine incremental(base);
    ThroughputEngine cold(base);
    cold.set_incremental(false);
    Rng rng(77);
    const auto chain = demand_chain(labels_of(base), 50, rng);
    for (const auto& demand : chain)
      ASSERT_EQ(incremental.throughput(demand), cold.throughput(demand));
    // Path accounting: the cold engine only ever short-circuits on
    // untouched demands; every solving query is a fallback.
    EXPECT_EQ(cold.stats().cycle_hits + cold.stats().warm_hits, 0u);
    EXPECT_EQ(cold.stats().fallbacks + cold.stats().unchanged,
              cold.stats().queries);
    EXPECT_GT(incremental.stats().incremental(),
              incremental.stats().fallbacks);
  }
}

TEST(ThroughputEngine, UndoRestoresStateAndResult) {
  const Digraph base = proc::make_cpu_graph();
  ThroughputEngine engine(base);
  const Demand d1 = {{"CU-IC", 1}, {"ALU-CU", 2}};
  const Demand d2 = {{"CU-IC", 0}, {"RF-ALU", 3}};

  const double r1 = engine.throughput(d1);
  EXPECT_EQ(r1, fresh_ratio(base, d1));
  const double r2 = engine.throughput(d2);
  EXPECT_EQ(r2, fresh_ratio(base, d2));
  ASSERT_TRUE(engine.can_undo());

  engine.undo();  // back to the d1 configuration
  EXPECT_FALSE(engine.can_undo());
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    const Digraph expected = configured(base, d1);
    EXPECT_EQ(engine.graph().edge(e).relay_stations,
              expected.edge(e).relay_stations);
  }
  // Re-querying the restored demand is the unchanged fast path and returns
  // the cached (exact) result.
  const std::uint64_t unchanged_before = engine.stats().unchanged;
  EXPECT_EQ(engine.throughput(d1), r1);
  EXPECT_EQ(engine.stats().unchanged, unchanged_before + 1);
  // Chains keep matching fresh solves after an undo.
  EXPECT_EQ(engine.throughput(d2), r2);

  engine.undo();
  EXPECT_THROW(engine.undo(), wp::ContractViolation);  // one level deep
}

TEST(ThroughputEngine, AcyclicGraphAlwaysReportsUnitThroughput) {
  Digraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  g.add_edge(a, b, "ab");
  g.add_edge(b, c, "bc");
  ThroughputEngine engine(g);
  EXPECT_EQ(engine.throughput({}), 1.0);
  EXPECT_EQ(engine.throughput({{"ab", 3}}), 1.0);
  EXPECT_EQ(engine.throughput({{"bc", 1}}), fresh_ratio(g, {{"bc", 1}}));
}

TEST(ThroughputEngine, UnknownLabelsAreIgnored) {
  const Digraph base = proc::make_cpu_graph();
  ThroughputEngine engine(base);
  const double plain = engine.throughput({});
  EXPECT_EQ(engine.throughput({{"NO-SUCH", 7}}), plain);
  EXPECT_EQ(engine.stats().unchanged, 1u);
}

TEST(ThroughputEngine, WithRsMapMatchesVectorForm) {
  const Digraph base = proc::make_cpu_graph();
  ThroughputEngine by_map(base);
  ThroughputEngine by_vector(base);
  const std::map<std::string, int> rs = {
      {"CU-IC", 1}, {"RF-DC", 2}, {"DC-RF", 1}};
  EXPECT_EQ(by_map.with_rs_map(rs),
            by_vector.throughput({rs.begin(), rs.end()}));
}

TEST(ThroughputEngine, SerialEqualsPooled) {
  const auto bases = family_topologies(24, 9);
  // Serial reference: one engine per topology, a fixed chain each.
  std::vector<std::vector<double>> serial(bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) {
    ThroughputEngine engine(bases[i]);
    Rng rng(123 + i);
    for (const auto& demand : demand_chain(labels_of(bases[i]), 30, rng))
      serial[i].push_back(engine.throughput(demand));
  }
  // Pooled: private engine per worker task, same chains.
  std::vector<std::vector<double>> pooled(bases.size());
  ThreadPool pool(4);
  pool.parallel_for(0, bases.size(), [&](std::size_t i) {
    ThroughputEngine engine(bases[i]);
    Rng rng(123 + i);
    for (const auto& demand : demand_chain(labels_of(bases[i]), 30, rng))
      pooled[i].push_back(engine.throughput(demand));
  });
  EXPECT_EQ(serial, pooled);
}

// ---------------------------------------------------------------- annealer

fplan::AnnealOptions throughput_driven_options(std::uint64_t seed) {
  fplan::AnnealOptions options;
  options.iterations = 1200;
  options.seed = seed;
  options.weight_throughput = 300.0;
  options.delay_model.clock_ps = 350.0;
  return options;
}

TEST(ThroughputEngineAnnealer, EngineRunMatchesEvaluatorRun) {
  const fplan::Instance inst = fplan::cpu_instance();
  const Digraph graph = proc::make_cpu_graph();

  fplan::AnnealOptions with_fn = throughput_driven_options(5);
  with_fn.throughput_fn = ThroughputEvaluator(graph);
  const fplan::AnnealResult reference = fplan::anneal(inst, with_fn);

  fplan::AnnealOptions with_engine = throughput_driven_options(5);
  ThroughputEngine engine(graph);
  with_engine.throughput_engine = &engine;
  const fplan::AnnealResult result = fplan::anneal(inst, with_engine);

  // Identical trajectory: the oracle swap must not change a single cost.
  EXPECT_EQ(result.cost, reference.cost);
  EXPECT_EQ(result.placement.x, reference.placement.x);
  EXPECT_EQ(result.placement.y, reference.placement.y);
  EXPECT_EQ(result.throughput, reference.throughput);
  EXPECT_EQ(result.accepted_moves, reference.accepted_moves);
  EXPECT_EQ(result.throughput_evals, reference.throughput_evals);
  EXPECT_EQ(result.throughput_cache_hits, reference.throughput_cache_hits);
  // Counter plumbing: every engine query of the run (move evaluations plus
  // the final placement_cost report) is accounted one way or the other.
  EXPECT_EQ(result.engine_incremental + result.engine_fallbacks,
            static_cast<std::uint64_t>(result.throughput_evals) + 1);
  EXPECT_EQ(reference.engine_incremental + reference.engine_fallbacks, 0u);
}

TEST(ThroughputEngineAnnealer, ParallelEngineFactoryMatchesSerialBestOf) {
  const fplan::Instance inst = fplan::cpu_instance();
  const Digraph graph = proc::make_cpu_graph();

  fplan::ParallelAnnealOptions parallel;
  parallel.base = throughput_driven_options(21);
  parallel.restarts = 3;
  parallel.engine_factory = [&graph]() {
    return std::make_unique<ThroughputEngine>(graph);
  };
  ThreadPool pool(3);
  parallel.pool = &pool;
  const fplan::AnnealResult pooled = fplan::anneal_parallel(inst, parallel);

  fplan::AnnealResult best;
  best.cost = 0;
  for (int i = 0; i < parallel.restarts; ++i) {
    fplan::AnnealOptions options = throughput_driven_options(21 + i);
    ThroughputEngine engine(graph);
    options.throughput_engine = &engine;
    const fplan::AnnealResult result = fplan::anneal(inst, options);
    if (i == 0 || result.cost < best.cost) best = result;
  }
  EXPECT_EQ(pooled.cost, best.cost);
  EXPECT_EQ(pooled.seed, best.seed);
  EXPECT_EQ(pooled.placement.x, best.placement.x);
  EXPECT_EQ(pooled.throughput, best.throughput);
}

// ---------------------------------------------------------------- ensemble

TEST(ThroughputEngineEnsemble, CountersAreDeterministicAcrossPooling) {
  gen::EnsembleConfig config;
  config.samples_per_family = 3;
  config.anneal.iterations = 250;
  config.max_cycle_enumeration = 2000;

  gen::FamilySpec ba;
  ba.name = "ba-12";
  ba.topology.family = gen::TopologyFamily::kBarabasiAlbert;
  ba.topology.num_nodes = 12;
  ba.topology.ba_attach = 2;
  config.families.push_back(ba);

  gen::FamilySpec mesh;
  mesh.name = "mesh-3x4";
  mesh.topology.family = gen::TopologyFamily::kMesh;
  mesh.topology.num_nodes = 12;
  mesh.topology.mesh_rows = 3;
  mesh.topology.mesh_cols = 4;
  config.families.push_back(mesh);

  const gen::EnsembleReport sequential =
      gen::run_ensemble_sequential(config);
  ThreadPool pool(4);
  const gen::EnsembleReport pooled = gen::run_ensemble(config, &pool);

  // operator== covers the engine counters, so pooling must not change the
  // engine's path selection, not just its results.
  EXPECT_EQ(sequential.samples, pooled.samples);
  EXPECT_EQ(sequential.engine_incremental, pooled.engine_incremental);
  EXPECT_EQ(sequential.engine_fallbacks, pooled.engine_fallbacks);
  std::uint64_t queries = 0;
  for (const auto& s : sequential.samples)
    queries += s.engine_incremental + s.engine_fallbacks;
  EXPECT_GT(queries, 0u);
}

}  // namespace
}  // namespace wp::graph
