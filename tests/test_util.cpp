// Unit tests of the wp_util foundation library.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace wp {
namespace {

// --------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, SplitDecorrelates) {
  Rng a(23);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ------------------------------------------------------------------- Stats

TEST(Stats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, EmptyThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
  s.add(1.0);
  EXPECT_THROW(s.variance(), ContractViolation);  // needs two samples
}

TEST(Stats, Percentile) {
  std::vector<double> data{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(data, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(data, 100), 5.0);
}

// The ensemble aggregator leans on the percentile edge cases: empty and
// out-of-range inputs must throw loudly, a single sample is every
// percentile of itself, and nearest-rank handles ties/p95 predictably.
TEST(Stats, PercentileContract) {
  EXPECT_THROW(percentile({}, 50), ContractViolation);
  EXPECT_THROW(percentile({1.0, 2.0}, -0.5), ContractViolation);
  EXPECT_THROW(percentile({1.0, 2.0}, 100.5), ContractViolation);

  for (double p : {0.0, 37.0, 50.0, 95.0, 100.0})
    EXPECT_DOUBLE_EQ(percentile({4.25}, p), 4.25);

  const std::vector<double> ties{2, 2, 2, 2, 9};
  EXPECT_DOUBLE_EQ(percentile(ties, 50), 2.0);
  EXPECT_DOUBLE_EQ(percentile(ties, 79), 2.0);   // rank 4 of 5 is still a 2
  EXPECT_DOUBLE_EQ(percentile(ties, 81), 9.0);   // rank 5 crosses the tie
  EXPECT_DOUBLE_EQ(percentile(ties, 100), 9.0);

  // Nearest-rank p95 on 20 samples picks the 19th order statistic.
  std::vector<double> twenty;
  for (int i = 1; i <= 20; ++i) twenty.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(percentile(twenty, 95), 19.0);
  EXPECT_DOUBLE_EQ(percentile(twenty, 95.1), 20.0);
}

TEST(Stats, SingleSampleSummary) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.sum(), 3.5);
}

TEST(Stats, TiedSamplesHaveZeroVariance) {
  RunningStats s;
  for (int i = 0; i < 4; ++i) s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, GeomeanOfPowers) {
  EXPECT_NEAR(geomean({1.0, 4.0, 16.0}), 4.0, 1e-12);
  EXPECT_THROW(geomean({1.0, 0.0}), ContractViolation);
  EXPECT_THROW(geomean({}), ContractViolation);
}

// ----------------------------------------------------------------- Strings

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",,", ','), (std::vector<std::string>{"", "", ""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Strings, SplitWs) {
  EXPECT_EQ(split_ws("  a\t b \n c "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, Misc) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("wirepipe", "wire"));
  EXPECT_FALSE(starts_with("wire", "wirepipe"));
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(format("x=%d y=%s", 3, "q"), "x=3 y=q");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_EQ(parse_int("0x10"), 16);
  EXPECT_THROW(parse_int("12abc"), ContractViolation);
  EXPECT_THROW(parse_int(""), ContractViolation);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5"), 2.5);
  EXPECT_THROW(parse_double("nope"), ContractViolation);
}

// ------------------------------------------------------------------- Table

TEST(Table, RendersAlignedColumns) {
  TextTable t({"Config", "Cycles"});
  t.add_row({"ideal", "1559"});
  t.add_section("Matrix Multiply");
  t.add_row({"all-1", "4703"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Config"), std::string::npos);
  EXPECT_NE(s.find("Matrix Multiply"), std::string::npos);
  EXPECT_NE(s.find("1559"), std::string::npos);
  EXPECT_EQ(t.rows(), 3u);
}

TEST(Table, RowWidthChecked) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(fmt_percent(0.13), "+13%");
  EXPECT_EQ(fmt_percent(0.0), "0%");
  EXPECT_EQ(fmt_percent(-0.044, 1), "-4.4%");
  EXPECT_EQ(fmt_fixed(0.6666, 3), "0.667");
}

// --------------------------------------------------------------------- CSV

TEST(Csv, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
  EXPECT_EQ(w.rows_written(), 1u);
}

TEST(Csv, QuotesSpecials) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"x,y", "he said \"hi\"", "line\nbreak"});
  EXPECT_EQ(os.str(), "\"x,y\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}


// --------------------------------------------------------------------- Log

TEST(Log, ThresholdFilters) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below the threshold: the stream body must still be side-effect-safe.
  int evaluations = 0;
  WP_LOG(kDebug) << "never emitted " << ++evaluations;
  EXPECT_EQ(evaluations, 0);  // short-circuited before evaluation
  set_log_level(saved);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "OFF");
}

// ------------------------------------------------------------------ Assert

TEST(Assert, CarriesLocationAndKind) {
  try {
    WP_REQUIRE(1 == 2, "impossible");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_STREQ(e.kind(), "precondition");
    EXPECT_NE(std::string(e.what()).find("impossible"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace wp
