// bench_diff — the perf flight recorder's CI gate.
//
//   bench_diff --baseline bench/snapshots/BENCH_floorplan.json
//              --fresh build/BENCH_floorplan.json
//              [--threshold 0.25] [--min-ms 1.0] [--report diff.json]
//
// Compares a fresh bench run against the committed snapshot and exits
// nonzero when any hot-path metric regressed by more than the threshold
// (see src/obs/bench_diff.hpp for the metric classification rules). The
// human-readable verdict goes to stdout; --report writes the full machine
// diff for the CI artifact.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "cli/arg_parser.hpp"
#include "obs/bench_diff.hpp"
#include "util/json.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream file(path);
  if (!file) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

const char* verdict(const wp::obs::MetricDelta& delta) {
  if (delta.regression) return "REGRESSED";
  if (delta.skipped_small) return "skipped (noise floor)";
  if (delta.direction == wp::obs::MetricDirection::kInformational)
    return "info";
  return delta.change < 0.0 ? "improved" : "ok";
}

}  // namespace

int main(int argc, char** argv) {
  wp::cli::ArgParser args(
      "bench_diff",
      "Compare a fresh bench JSON against a committed snapshot and fail on "
      "hot-path regressions.");
  args.option("--baseline", "path", "", "committed snapshot JSON");
  args.option("--fresh", "path", "", "freshly generated bench JSON");
  args.option("--threshold", "fraction", "0.25",
              "relative slowdown that fails the gate");
  args.option("--min-ms", "ms", "1.0",
              "noise floor: wall-clock metrics under this are not gated");
  args.option("--report", "path", "", "write the full JSON diff report here");
  args.flag("--quiet", "print only regressions and the final verdict");
  args.parse_or_exit(argc, argv);

  const std::string baseline_path = args.get("--baseline");
  const std::string fresh_path = args.get("--fresh");
  if (baseline_path.empty() || fresh_path.empty()) {
    std::cerr << "bench_diff: --baseline and --fresh are required\n"
              << args.usage();
    return 2;
  }

  std::string baseline_text, fresh_text;
  if (!read_file(baseline_path, baseline_text)) {
    std::cerr << "bench_diff: cannot read " << baseline_path << "\n";
    return 2;
  }
  if (!read_file(fresh_path, fresh_text)) {
    std::cerr << "bench_diff: cannot read " << fresh_path << "\n";
    return 2;
  }

  wp::obs::BenchDiffOptions options;
  options.threshold = args.get_double("--threshold");
  options.min_ms = args.get_double("--min-ms");

  wp::obs::BenchDiffReport report;
  try {
    const wp::json::Value baseline = wp::json::Value::parse(baseline_text);
    const wp::json::Value fresh = wp::json::Value::parse(fresh_text);
    report = wp::obs::diff_benchmarks(baseline, fresh, options);
  } catch (const wp::json::ParseError& error) {
    std::cerr << "bench_diff: JSON parse error: " << error.what() << "\n";
    return 2;
  }

  const bool quiet = args.has("--quiet");
  for (const wp::obs::MetricDelta& delta : report.deltas) {
    if (quiet && !delta.regression) continue;
    std::printf("%-12s %-48s %12.4f -> %12.4f  (%+.1f%%)\n", verdict(delta),
                delta.path.c_str(), delta.baseline, delta.fresh,
                delta.change * 100.0);
  }
  for (const std::string& path : report.missing_in_fresh)
    std::printf("MISSING      %-48s (in baseline, absent from fresh run)\n",
                path.c_str());
  for (const std::string& path : report.missing_in_baseline)
    std::printf("new          %-48s (absent from baseline)\n", path.c_str());

  const std::string report_path = args.get("--report");
  if (!report_path.empty()) {
    std::ofstream file(report_path);
    if (!file) {
      std::cerr << "bench_diff: cannot write " << report_path << "\n";
      return 2;
    }
    wp::json::JsonWriter json(file);
    wp::obs::write_diff_report(report, options, json);
    file << "\n";
  }

  if (!report.pass()) {
    std::printf("FAIL: %zu regression(s) beyond %.0f%%, %zu missing metric(s)\n",
                report.regressions(), options.threshold * 100.0,
                report.missing_in_fresh.size());
    return 1;
  }
  std::printf("PASS: %zu metric(s) compared, no regression beyond %.0f%%\n",
              report.deltas.size(), options.threshold * 100.0);
  return 0;
}
